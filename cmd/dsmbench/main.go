// dsmbench regenerates the paper's evaluation artifacts: Figure 2
// (execution time vs processors), Figure 3 (AT vs FT2 improvement vs
// problem size), Figure 5(a)/(b) (synthetic benchmark), and the ablation
// studies listed in DESIGN.md.
//
// Usage:
//
//	dsmbench -fig 2                  # Figure 2 at the scaled default sizes
//	dsmbench -fig 3 -full            # Figure 3 at the paper's sizes
//	dsmbench -fig 5a,5b              # both synthetic panels
//	dsmbench -all -par 8             # everything, on 8 workers
//	dsmbench -fig 2 -trials 5        # 5 seeded trials, mean/min/max tables
//	dsmbench -all -json out.json     # machine-readable artifact
//	dsmbench -ablate locator,lambda  # ablations (locator|lambda|tinit|related|piggyback|pathcompress)
//	dsmbench -fig 2 -check           # sweep doubles as a correctness gate
//	dsmbench -scenarios 200          # random programs through the coherence oracle
//	dsmbench -chaos 50               # fault-injected live runs: parity or clean abort
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/bench"
	"repro/internal/scenario"
)

// multiFlag is a repeatable, comma-separable string-list flag: both
// `-fig 2 -fig 3` and `-fig 2,3` accumulate the same list.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	for _, part := range strings.Split(v, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			*m = append(*m, part)
		}
	}
	return nil
}

// dedup drops repeated values, keeping first-occurrence order, so
// duplicate flags (e.g. `-fig 5a -fig 5a,5b`) don't rerun or reprint.
func dedup(m multiFlag) multiFlag {
	seen := make(map[string]bool, len(m))
	var out multiFlag
	for _, v := range m {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func main() {
	var figs, ablates multiFlag
	flag.Var(&figs, "fig", "figures to regenerate: 2, 3, 5a, 5b (repeatable or comma-separated)")
	flag.Var(&ablates, "ablate", "ablations to run: locator, lambda, tinit, related, piggyback, pathcompress (repeatable or comma-separated)")
	all := flag.Bool("all", false, "regenerate every figure and ablation")
	full := flag.Bool("full", false, "use the paper's full problem sizes (slow) instead of scaled defaults")
	quiet := flag.Bool("q", false, "suppress progress output")
	par := flag.Int("par", 0, "parallel sweep workers (0 = GOMAXPROCS, 1 = sequential); output is byte-identical at any setting")
	trials := flag.Int("trials", 1, "seeded trials per configuration; tables report mean with min..max spread")
	check := flag.Bool("check", false, "correctness gate: verify protocol invariants after every run and demand policy-independent final memory where the sweep varies only the policy")
	scenarios := flag.Int("scenarios", 0, "run N seeded random scenarios through the coherence oracle under every builtin policy, then exit (combine with -seed)")
	cross := flag.Int("cross", 0, "cross-engine gate: run N seeded scenarios under every builtin policy on BOTH the sim and live engines, demanding clean verdicts and identical final-memory digests (combine with -seed)")
	chaos := flag.Int("chaos", 0, "chaos gate: run N seeded scenarios on the live engine over the fault-injecting transport (delays always, scheduled node kills and link cuts); every run must complete with the fault-free sim digest or abort cleanly, within a deadline (combine with -seed)")
	chaosDeadline := flag.Duration("chaos-deadline", 0, "per-run bound for -chaos (0 = 2m); a run that neither completes nor aborts in time fails the gate as a hang")
	seedBase := flag.Uint64("seed", 1, "first seed for -scenarios")
	csvPath := flag.String("csv", "", "write all produced rows as CSV to this file (\"-\" for stdout)")
	jsonPath := flag.String("json", "", "write all produced rows as JSON to this file (\"-\" for stdout)")
	benchJSON := flag.String("benchjson", "", "run the kernel/hot-path microbenchmarks and write a machine-readable report to this file (\"-\" for stdout), e.g. BENCH_kernel.json")
	benchJSONLive := flag.String("benchjson-live", "", "run the live-engine microbenchmarks (real goroutines over the chanloop transport) and write a machine-readable report to this file (\"-\" for stdout), e.g. BENCH_live.json")
	flag.Parse()

	if *all {
		figs = multiFlag{"2", "3", "5a", "5b"}
		ablates = multiFlag{"locator", "lambda", "tinit", "related", "piggyback", "pathcompress"}
	}
	figs, ablates = dedup(figs), dedup(ablates)
	if *benchJSON != "" {
		if err := bench.WriteKernelBenchJSON(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "dsmbench:", err)
			os.Exit(1)
		}
	}
	if *benchJSONLive != "" {
		if err := bench.WriteLiveBenchJSON(*benchJSONLive); err != nil {
			fmt.Fprintln(os.Stderr, "dsmbench:", err)
			os.Exit(1)
		}
	}
	if (*benchJSON != "" || *benchJSONLive != "") &&
		len(figs) == 0 && len(ablates) == 0 && *scenarios == 0 && *cross == 0 && *chaos == 0 {
		return
	}
	if *chaos > 0 {
		progress := func(s string) { fmt.Fprintf(os.Stderr, "  [chaos] %s\n", s) }
		if *quiet {
			progress = nil
		}
		st, err := scenario.ChaosSweep(*seedBase, *chaos, *par, *chaosDeadline, progress)
		fmt.Printf("chaos sweep: %d runs, %d completed with sim-digest parity, %d aborted cleanly\n",
			st.Runs, st.Completed, st.Aborted)
		if err != nil {
			for _, f := range st.Failures {
				fmt.Fprintln(os.Stderr, "dsmbench:", f)
			}
			fmt.Fprintln(os.Stderr, "dsmbench:", err)
			os.Exit(1)
		}
		fmt.Println("chaos sweep: PASS (every faulted run completed with parity or aborted cleanly; zero hangs)")
		if len(figs) == 0 && len(ablates) == 0 && *scenarios == 0 && *cross == 0 {
			return
		}
	}
	if *cross > 0 {
		progress := func(s string) { fmt.Fprintf(os.Stderr, "  [x] %s\n", s) }
		if *quiet {
			progress = nil
		}
		st, err := scenario.CrossSweep(*seedBase, *cross, *par, progress)
		fmt.Printf("cross-engine sweep: %d scenarios, %d runs (every builtin policy × sim+live), %d checked reads, %d oracle ops\n",
			st.Scenarios, st.Runs, st.ReadsChecked, st.OracleOps)
		if err != nil {
			for _, f := range st.Failures {
				fmt.Fprintln(os.Stderr, "dsmbench:", f)
			}
			fmt.Fprintln(os.Stderr, "dsmbench:", err)
			os.Exit(1)
		}
		fmt.Println("cross-engine sweep: PASS (both engines clean, final memory identical per seed and policy)")
		if len(figs) == 0 && len(ablates) == 0 && *scenarios == 0 {
			return
		}
	}
	if *scenarios > 0 {
		progress := func(s string) { fmt.Fprintf(os.Stderr, "  [scn] %s\n", s) }
		if *quiet {
			progress = nil
		}
		st, err := scenario.Sweep(*seedBase, *scenarios, *par, progress)
		fmt.Printf("scenario sweep: %d scenarios, %d runs (every builtin policy), %d checked reads, %d oracle ops\n",
			st.Scenarios, st.Runs, st.ReadsChecked, st.OracleOps)
		if err != nil {
			for _, f := range st.Failures {
				fmt.Fprintln(os.Stderr, "dsmbench:", f)
			}
			fmt.Fprintln(os.Stderr, "dsmbench:", err)
			os.Exit(1)
		}
		fmt.Println("scenario sweep: PASS (oracle clean, invariants intact, final memory policy-independent)")
		if len(figs) == 0 && len(ablates) == 0 {
			return
		}
	}
	if len(figs) == 0 && len(ablates) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *trials < 1 {
		*trials = 1
	}
	opts := bench.RunOpts{Par: *par, Trials: *trials, Check: *check}
	if !*quiet {
		opts.Progress = func(s string) { fmt.Fprintf(os.Stderr, "  [run] %s\n", s) }
		workers := *par
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		fmt.Fprintf(os.Stderr, "dsmbench: %d sweep worker(s), %d trial(s) per configuration\n",
			workers, *trials)
	}
	sizes := bench.DefaultSizes()
	fig3ASP := []int{64, 128, 256, 512}
	fig3SOR := []int{128, 256, 512, 1024}
	if *full {
		sizes = bench.FullSizes()
		fig3ASP = []int{128, 256, 512, 1024}
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dsmbench:", err)
		os.Exit(1)
	}
	report := bench.Report{Sizes: sizes, Trials: *trials}
	did5 := false
	for _, f := range figs {
		switch f {
		case "2":
			rows, err := bench.Fig2(sizes, nil, opts)
			if err != nil {
				fail(err)
			}
			report.Fig2 = rows
			bench.PrintFig2(os.Stdout, sizes, rows)
			fmt.Println()
		case "3":
			rows, err := bench.Fig3(fig3ASP, fig3SOR, sizes.SORIters, 8, opts)
			if err != nil {
				fail(err)
			}
			report.Fig3 = rows
			bench.PrintFig3(os.Stdout, rows)
			fmt.Println()
		case "5a", "5b":
			if did5 {
				continue // both panels come from one sweep
			}
			did5 = true
			rows, err := bench.Fig5(bench.Fig5Config{}, opts)
			if err != nil {
				fail(err)
			}
			report.Fig5 = rows
			if has(figs, "5a") {
				bench.PrintFig5a(os.Stdout, rows)
				fmt.Println()
			}
			if has(figs, "5b") {
				bench.PrintFig5b(os.Stdout, rows)
				fmt.Println()
			}
		default:
			fail(fmt.Errorf("unknown figure %q", f))
		}
	}
	for _, a := range ablates {
		var rows []bench.AblationRow
		var err error
		switch a {
		case "locator":
			rows, err = bench.AblateLocator(opts)
		case "lambda":
			rows, err = bench.AblateLambda(opts)
		case "tinit":
			rows, err = bench.AblateTInit(opts)
		case "related":
			rows, err = bench.AblateRelated(opts)
		case "piggyback":
			rows, err = bench.AblatePiggyback(opts)
		case "pathcompress":
			rows, err = bench.AblatePathCompression(opts)
		default:
			err = fmt.Errorf("unknown ablation %q", a)
		}
		if err != nil {
			fail(err)
		}
		report.Ablations = append(report.Ablations, rows...)
		bench.PrintAblation(os.Stdout, a, rows)
		fmt.Println()
	}
	if err := writeArtifact(*jsonPath, report.WriteJSON); err != nil {
		fail(err)
	}
	if err := writeArtifact(*csvPath, report.WriteCSV); err != nil {
		fail(err)
	}
}

// writeArtifact writes one artifact to path ("-" = stdout, "" = skip).
func writeArtifact(path string, write func(w io.Writer) error) error {
	if path == "" {
		return nil
	}
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func has(m multiFlag, v string) bool {
	for _, x := range m {
		if x == v {
			return true
		}
	}
	return false
}
