// dsmbench regenerates the paper's evaluation artifacts: Figure 2
// (execution time vs processors), Figure 3 (AT vs FT2 improvement vs
// problem size), Figure 5(a)/(b) (synthetic benchmark), and the ablation
// studies listed in DESIGN.md.
//
// Usage:
//
//	dsmbench -fig 2            # Figure 2 at the scaled default sizes
//	dsmbench -fig 3 -full      # Figure 3 at the paper's sizes
//	dsmbench -fig 5a -fig 5b   # both synthetic panels
//	dsmbench -all              # everything
//	dsmbench -ablate locator   # one ablation (locator|lambda|tinit|related|piggyback)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var figs, ablates multiFlag
	flag.Var(&figs, "fig", "figure to regenerate: 2, 3, 5a, 5b (repeatable)")
	flag.Var(&ablates, "ablate", "ablation to run: locator, lambda, tinit, related, piggyback, pathcompress (repeatable)")
	all := flag.Bool("all", false, "regenerate every figure and ablation")
	full := flag.Bool("full", false, "use the paper's full problem sizes (slow) instead of scaled defaults")
	quiet := flag.Bool("q", false, "suppress progress output")
	benchJSON := flag.String("benchjson", "", "run the kernel/hot-path microbenchmarks and write a machine-readable report to this file (\"-\" for stdout), e.g. BENCH_kernel.json")
	flag.Parse()

	if *all {
		figs = multiFlag{"2", "3", "5a", "5b"}
		ablates = multiFlag{"locator", "lambda", "tinit", "related", "piggyback", "pathcompress"}
	}
	if *benchJSON != "" {
		if err := bench.WriteKernelBenchJSON(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "dsmbench:", err)
			os.Exit(1)
		}
		if len(figs) == 0 && len(ablates) == 0 {
			return
		}
	}
	if len(figs) == 0 && len(ablates) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	progress := func(s string) { fmt.Fprintf(os.Stderr, "  [run] %s\n", s) }
	if *quiet {
		progress = nil
	}
	sizes := bench.DefaultSizes()
	fig3ASP := []int{64, 128, 256, 512}
	fig3SOR := []int{128, 256, 512, 1024}
	if *full {
		sizes = bench.FullSizes()
		fig3ASP = []int{128, 256, 512, 1024}
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dsmbench:", err)
		os.Exit(1)
	}
	did5 := false
	for _, f := range figs {
		switch f {
		case "2":
			rows, err := bench.Fig2(sizes, nil, progress)
			if err != nil {
				fail(err)
			}
			bench.PrintFig2(os.Stdout, sizes, rows)
			fmt.Println()
		case "3":
			rows, err := bench.Fig3(fig3ASP, fig3SOR, sizes.SORIters, 8, progress)
			if err != nil {
				fail(err)
			}
			bench.PrintFig3(os.Stdout, rows)
			fmt.Println()
		case "5a", "5b":
			if did5 {
				continue // both panels come from one sweep
			}
			did5 = true
			rows, err := bench.Fig5(bench.Fig5Config{}, progress)
			if err != nil {
				fail(err)
			}
			if has(figs, "5a") {
				bench.PrintFig5a(os.Stdout, rows)
				fmt.Println()
			}
			if has(figs, "5b") {
				bench.PrintFig5b(os.Stdout, rows)
				fmt.Println()
			}
		default:
			fail(fmt.Errorf("unknown figure %q", f))
		}
	}
	for _, a := range ablates {
		var rows []bench.AblationRow
		var err error
		switch a {
		case "locator":
			rows, err = bench.AblateLocator(progress)
		case "lambda":
			rows, err = bench.AblateLambda(progress)
		case "tinit":
			rows, err = bench.AblateTInit(progress)
		case "related":
			rows, err = bench.AblateRelated(progress)
		case "piggyback":
			rows, err = bench.AblatePiggyback(progress)
		case "pathcompress":
			rows, err = bench.AblatePathCompression(progress)
		default:
			err = fmt.Errorf("unknown ablation %q", a)
		}
		if err != nil {
			fail(err)
		}
		bench.PrintAblation(os.Stdout, a, rows)
		fmt.Println()
	}
}

func has(m multiFlag, v string) bool {
	for _, x := range m {
		if x == v {
			return true
		}
	}
	return false
}
