//dsm:wallclock daemon bootstrap deadlines and exit-path grace sleeps run on real time

// dsmnode runs one node of a multi-process DSM cluster: N processes,
// each started with the same application flags and a distinct -id, find
// each other over TCP (one connection per node pair), barrier on start,
// execute the registered application on the live engine with this
// node's threads, and agree on the outcome — merged metrics, memory
// digest and (under -check) distributed invariants plus the merged LRC
// coherence oracle, printed by node 0.
//
// Usage (a 4-node localhost cluster; run each line in its own shell or
// background the first three):
//
//	dsmnode -id 0 -peers 127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702,127.0.0.1:7703 -app sor -n 64 -iters 4 -check
//	dsmnode -id 1 -peers ...same list... -app sor -n 64 -iters 4 -check
//	dsmnode -id 2 -peers ...same list... -app sor -n 64 -iters 4 -check
//	dsmnode -id 3 -peers ...same list... -app sor -n 64 -iters 4 -check
//
// Every member must be started with identical application flags — the
// bootstrap handshake exchanges a digest of the configuration and
// rejects mismatches, because each process builds its own replica of
// the cluster layout (objects, locks, barriers, thread placement) and
// those replicas must be identical for the protocol to route.
//
// The process exits 0 only when the whole cluster succeeded: an
// application-result mismatch, invariant violation, oracle violation
// or digest disagreement on any node fails every node. For a
// deterministic program the digest printed by node 0 equals the
// digest of a single-process run of the same configuration (dsmrun
// -engine live -check, or -engine sim), which is the cross-engine
// equivalence gate extended to its third engine configuration.
//
// Failures exit with a distinct code per failure domain, so a harness
// can tell a misconfigured member from a crashed peer:
//
//	0  cluster-wide success
//	1  other failure (bad flags, application error)
//	3  configuration mismatch rejected at the bootstrap handshake
//	4  bootstrap timed out (a peer never became reachable or silent)
//	5  runtime abort: a peer died mid-run, went silent past the
//	   heartbeat bound, or the -deadline watchdog fired; stderr names
//	   the peer or connection that triggered it
//	6  verification failed: digest disagreement, merged-oracle
//	   violation, invariant failure, or a member's application error
//	7  chaos self-kill (-chaos-kill-after): this process killed itself
//	   deliberately so the survivors' abort path could be tested
package main

import (
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/live/cluster"
	"repro/internal/memory"
)

// Exit codes per failure domain (see package comment).
const (
	exitOK        = 0
	exitOther     = 1
	exitConfig    = 3
	exitBootstrap = 4
	exitAbort     = 5
	exitVerify    = 6
	exitChaosKill = 7
)

// exitCode maps an error to its failure domain's exit code via the
// cluster package's classification sentinels.
func exitCode(err error) int {
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, cluster.ErrConfigMismatch):
		return exitConfig
	case errors.Is(err, cluster.ErrBootstrapTimeout):
		return exitBootstrap
	case errors.Is(err, cluster.ErrPeerDeath):
		return exitAbort
	case errors.Is(err, cluster.ErrVerification):
		return exitVerify
	default:
		return exitOther
	}
}

func main() {
	var (
		id      = flag.Int("id", -1, "this node's id (0..nodes-1; node 0 coordinates and prints the merged report)")
		peers   = flag.String("peers", "", "comma-separated host:port per node, index = node id (required)")
		nodes   = flag.Int("nodes", 0, "cluster size; 0 derives it from -peers (set it as a cross-check)")
		app     = flag.String("app", "sor", "application: asp, sor, nbody, tsp, synthetic")
		n       = flag.Int("n", 64, "problem size (graph nodes / matrix side / bodies)")
		iters   = flag.Int("iters", 4, "SOR iterations / Nbody steps")
		cities  = flag.Int("cities", 10, "TSP cities")
		threads = flag.Int("threads", 0, "total threads across the cluster (0 = one per node)")
		policy  = flag.String("policy", "AT", "migration policy: AT, FT<k>, NoHM, JUMP, Jackal[k], Jiajia")
		loc     = flag.String("locator", "fwdptr", "home locator: fwdptr, manager, broadcast")
		lambda  = flag.Float64("lambda", 0, "feedback coefficient λ (0 = paper's 1)")
		tinit   = flag.Float64("tinit", 0, "initial threshold (0 = paper's 1)")
		noPig   = flag.Bool("nopiggyback", false, "disable diff piggybacking on sync messages")
		seed    = flag.Uint64("seed", 0, "input perturbation seed (0 = canonical paper input)")
		check   = flag.Bool("check", false, "cluster-wide gate: distributed invariants, merged LRC oracle, digest agreement")
		rep     = flag.Int("r", 8, "synthetic: repetition of the single-writer pattern")
		updates = flag.Int("updates", 2048, "synthetic: total counter updates")
		workers = flag.Int("workers", 0, "synthetic: worker threads (0 = nodes-1, on nodes 1..workers)")
		timeout = flag.Duration("join-timeout", 20*time.Second, "how long to wait for peers during bootstrap")
		verbose = flag.Bool("v", false, "log bootstrap progress")

		// Failure-injection and bounding flags. Excluded from the config
		// digest: they are deliberately per-process (a chaos harness kills
		// ONE member; a watchdog may differ per host).
		deadline  = flag.Duration("deadline", 0, "watchdog: exit nonzero if the whole run has not finished in this long (0 = none)")
		chaosKill = flag.Int64("chaos-kill-after", 0, "chaos: kill this process once it has seen this many engine data frames (0 = never)")
	)
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if *peers == "" || len(addrs) == 0 {
		fatal(fmt.Errorf("-peers is required (one host:port per node)"))
	}
	if *nodes != 0 && *nodes != len(addrs) {
		fatal(fmt.Errorf("-nodes %d disagrees with %d peer addresses", *nodes, len(addrs)))
	}
	nn := len(addrs)
	if *id < 0 || *id >= nn {
		fatal(fmt.Errorf("-id %d outside cluster of %d", *id, nn))
	}
	if *app == "synthetic" && *workers == 0 {
		*workers = nn - 1
	}

	// The configuration digest: every member must present the same one
	// at the handshake, since each process independently builds what
	// must be identical cluster replicas. Peer addresses are excluded —
	// hostname spellings may legitimately differ per process; the
	// pair-wise hello already validates ids and cluster size.
	canon := fmt.Sprintf("v1|app=%s|n=%d|iters=%d|cities=%d|nodes=%d|threads=%d|policy=%s|locator=%s|lambda=%g|tinit=%g|nopig=%t|seed=%d|check=%t|r=%d|updates=%d|workers=%d",
		*app, *n, *iters, *cities, nn, *threads, *policy, *loc, *lambda, *tinit, *noPig, *seed, *check, *rep, *updates, *workers)
	h := fnv.New64a()
	h.Write([]byte(canon))

	cfg := cluster.Config{
		ID:          memory.NodeID(*id),
		Addrs:       addrs,
		Digest:      h.Sum64(),
		Check:       *check,
		DialTimeout: *timeout,
		OnFatal: func(err error) {
			// The transport's error names the peer/connection that broke
			// (e.g. "read with node 2 failed: ...") — print it verbatim so
			// the operator knows which member to look at.
			fmt.Fprintf(os.Stderr, "dsmnode %d: cluster broken, aborting: %v\n", *id, err)
			os.Exit(exitAbort)
		},
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dsmnode: "+format+"\n", args...)
		}
	}
	if *deadline > 0 {
		time.AfterFunc(*deadline, func() {
			fmt.Fprintf(os.Stderr, "dsmnode %d: deadline %v exceeded with the run unfinished, aborting\n", *id, *deadline)
			os.Exit(exitAbort)
		})
	}
	member, err := cluster.Join(cfg)
	if err != nil {
		fatal(err)
	}
	if *chaosKill > 0 {
		// Die abruptly — no Leave, no AbortApp — once enough engine
		// traffic has flowed that the run is demonstrably mid-flight. The
		// survivors must detect the death and exit nonzero within their
		// deadlines: the clean-abort guarantee this flag exists to test.
		go func() {
			for member.DataFrames() < *chaosKill {
				time.Sleep(200 * time.Microsecond)
			}
			fmt.Fprintf(os.Stderr, "dsmnode %d: chaos kill after %d data frames\n", *id, member.DataFrames())
			os.Exit(exitChaosKill)
		}()
	}

	o := apps.Options{
		Nodes: nn, Threads: *threads, Policy: *policy, Locator: *loc,
		Lambda: *lambda, TInit: *tinit, NoPiggyback: *noPig, Seed: *seed,
		Engine: "live", Check: *check, Oracle: *check, Multi: member,
	}
	var res apps.Result
	switch *app {
	case "asp":
		res, err = apps.RunASP(*n, o)
	case "sor":
		res, err = apps.RunSOR(*n, *iters, o)
	case "nbody":
		res, err = apps.RunNBody(*n, *iters, o)
	case "tsp":
		res, err = apps.RunTSP(*cities, o)
	case "synthetic":
		if nn < *workers+1 {
			err = fmt.Errorf("synthetic with %d workers needs at least %d nodes", *workers, *workers+1)
		} else {
			res, err = apps.RunSynthetic(apps.SyntheticOpts{
				Repetition: *rep, TotalUpdates: *updates, Workers: *workers,
			}, o)
		}
	default:
		err = fmt.Errorf("unknown app %q", *app)
	}
	if err != nil {
		// Tell the cluster (unless the error *is* the cluster verdict,
		// in which case every member already has it). AbortApp's return
		// may carry a sharper classification (peer death when the
		// verdict exchange wedged and the grace timer severed).
		if !member.Completed() {
			if aerr := member.AbortApp(err); aerr != nil && exitCode(aerr) != exitOther {
				err = aerr
			}
		}
		fmt.Fprintf(os.Stderr, "dsmnode %d: %v\n", *id, err)
		member.Leave()
		os.Exit(exitCode(err))
	}
	if *id == 0 {
		fmt.Printf("%s over %d processes\n", res.App, nn)
		fmt.Print(res.Metrics.Summary())
		if *check {
			fmt.Printf("check          invariants OK, oracle OK (%d ops), digest %#x\n",
				res.OracleOps, res.Digest)
		}
	} else if *verbose {
		fmt.Fprintf(os.Stderr, "dsmnode %d: ok (digest %#x)\n", *id, res.Digest)
	}
	member.Leave()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsmnode:", err)
	os.Exit(exitCode(err))
}
