//dsm:wallclock daemon bootstrap deadlines and exit-path grace sleeps run on real time

// dsmnode runs one node of a multi-process DSM cluster: N processes,
// each started with the same application flags and a distinct -id, find
// each other over TCP (one connection per node pair), barrier on start,
// execute the registered application on the live engine with this
// node's threads, and agree on the outcome — merged metrics, memory
// digest and (under -check) distributed invariants plus the merged LRC
// coherence oracle, printed by node 0.
//
// Usage (a 4-node localhost cluster; run each line in its own shell or
// background the first three):
//
//	dsmnode -id 0 -peers 127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702,127.0.0.1:7703 -app sor -n 64 -iters 4 -check
//	dsmnode -id 1 -peers ...same list... -app sor -n 64 -iters 4 -check
//	dsmnode -id 2 -peers ...same list... -app sor -n 64 -iters 4 -check
//	dsmnode -id 3 -peers ...same list... -app sor -n 64 -iters 4 -check
//
// Every member must be started with identical application flags — the
// bootstrap handshake exchanges a digest of the configuration and
// rejects mismatches, because each process builds its own replica of
// the cluster layout (objects, locks, barriers, thread placement) and
// those replicas must be identical for the protocol to route.
//
// The process exits 0 only when the whole cluster succeeded: an
// application-result mismatch, invariant violation, oracle violation
// or digest disagreement on any node fails every node. For a
// deterministic program the digest printed by node 0 equals the
// digest of a single-process run of the same configuration (dsmrun
// -engine live -check, or -engine sim), which is the cross-engine
// equivalence gate extended to its third engine configuration.
//
// Failures exit with a distinct code per failure domain, so a harness
// can tell a misconfigured member from a crashed peer:
//
//	0  cluster-wide success
//	1  other failure (bad flags, application error)
//	3  configuration mismatch rejected at the bootstrap handshake
//	4  bootstrap timed out (a peer never became reachable or silent)
//	5  runtime abort: a peer died mid-run, went silent past the
//	   heartbeat bound, or the -deadline watchdog fired; stderr names
//	   the peer or connection that triggered it
//	6  verification failed: digest disagreement, merged-oracle
//	   violation, invariant failure, or a member's application error
//	7  chaos self-kill (-chaos-kill-after): this process killed itself
//	   deliberately so the survivors' abort path could be tested
//
// Observability: -flight N attaches a flight recorder of N events to
// this member (HLC-stamped frame traffic, migration decisions with
// reasons, lock/barrier events, heartbeats, faults); node 0 gathers
// every member's ring at finish or abort and can export the merged
// cluster timeline (-flight-text, -flight-trace for Perfetto). Any
// failure path dumps this process's trailing events to stderr. -json
// emits the merged run artifact machine-readably (node 0).
//
// Live telemetry is always on: every member carries a metric registry
// (frame and byte counters per peer, queue depths and peaks, heartbeat
// liveness, protocol counters and latency histograms from the engine,
// plus a space-saving hot-object sketch) and ships a compact snapshot
// to node 0 every -telemetry-interval over the transport's telemetry
// frame channel. -obs-addr serves the debug listener: /debug/pprof,
// /flight (this node's ring as text, mid-run), and /metrics as
// Prometheus text exposition — on node 0 the cluster-aggregated view
// with one labeled series set per member. -stats-interval prints a
// periodic one-line status to stderr, and -metrics-json writes the
// sampled metric time-series at end of run.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"sync"
	"time"

	dsm "repro"

	"repro/internal/apps"
	"repro/internal/flight"
	"repro/internal/live/cluster"
	"repro/internal/live/transport/tcp"
	"repro/internal/memory"
	"repro/internal/obshttp"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Exit codes per failure domain (see package comment).
const (
	exitOK        = 0
	exitOther     = 1
	exitConfig    = 3
	exitBootstrap = 4
	exitAbort     = 5
	exitVerify    = 6
	exitChaosKill = 7
)

// exitCode maps an error to its failure domain's exit code via the
// cluster package's classification sentinels.
func exitCode(err error) int {
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, cluster.ErrConfigMismatch):
		return exitConfig
	case errors.Is(err, cluster.ErrBootstrapTimeout):
		return exitBootstrap
	case errors.Is(err, cluster.ErrPeerDeath):
		return exitAbort
	case errors.Is(err, cluster.ErrVerification):
		return exitVerify
	default:
		return exitOther
	}
}

func main() {
	var (
		id      = flag.Int("id", -1, "this node's id (0..nodes-1; node 0 coordinates and prints the merged report)")
		peers   = flag.String("peers", "", "comma-separated host:port per node, index = node id (required)")
		nodes   = flag.Int("nodes", 0, "cluster size; 0 derives it from -peers (set it as a cross-check)")
		app     = flag.String("app", "sor", "application: asp, sor, nbody, tsp, synthetic")
		n       = flag.Int("n", 64, "problem size (graph nodes / matrix side / bodies)")
		iters   = flag.Int("iters", 4, "SOR iterations / Nbody steps")
		cities  = flag.Int("cities", 10, "TSP cities")
		threads = flag.Int("threads", 0, "total threads across the cluster (0 = one per node)")
		policy  = flag.String("policy", "AT", "migration policy: AT, FT<k>, NoHM, JUMP, Jackal[k], Jiajia")
		loc     = flag.String("locator", "fwdptr", "home locator: fwdptr, manager, broadcast")
		lambda  = flag.Float64("lambda", 0, "feedback coefficient λ (0 = paper's 1)")
		tinit   = flag.Float64("tinit", 0, "initial threshold (0 = paper's 1)")
		noPig   = flag.Bool("nopiggyback", false, "disable diff piggybacking on sync messages")
		seed    = flag.Uint64("seed", 0, "input perturbation seed (0 = canonical paper input)")
		check   = flag.Bool("check", false, "cluster-wide gate: distributed invariants, merged LRC oracle, digest agreement")
		rep     = flag.Int("r", 8, "synthetic: repetition of the single-writer pattern")
		updates = flag.Int("updates", 2048, "synthetic: total counter updates")
		workers = flag.Int("workers", 0, "synthetic: worker threads (0 = nodes-1, on nodes 1..workers)")
		timeout = flag.Duration("join-timeout", 20*time.Second, "how long to wait for peers during bootstrap")
		verbose = flag.Bool("v", false, "log bootstrap progress")

		// Failure-injection and bounding flags. Excluded from the config
		// digest: they are deliberately per-process (a chaos harness kills
		// ONE member; a watchdog may differ per host).
		deadline  = flag.Duration("deadline", 0, "watchdog: exit nonzero if the whole run has not finished in this long (0 = none)")
		chaosKill = flag.Int64("chaos-kill-after", 0, "chaos: kill this process once it has seen this many engine data frames (0 = never)")

		// Observability flags. Also excluded from the config digest: they
		// change what a process records and reports, never what it
		// computes, so members may legitimately differ.
		flightCap   = flag.Int("flight", 0, "flight recorder capacity in events for this member (0 = off)")
		flightText  = flag.String("flight-text", "", "node 0: write the merged cluster timeline as text to this file (\"-\" = stdout; needs -flight)")
		flightTrace = flag.String("flight-trace", "", "node 0: write the merged cluster timeline as Chrome trace-event JSON to this file (\"-\" = stdout; needs -flight)")
		flightDump  = flag.Int("flight-dump", 16, "on any failure path, dump this process's last N flight events to stderr (needs -flight)")
		jsonOut     = flag.Bool("json", false, "node 0: emit the merged run artifact as JSON on stdout instead of the text report")
		obsAddr     = flag.String("obs-addr", "", "serve the debug listener (/debug/pprof, /metrics, /flight) on this address")
		telInterval = flag.Duration("telemetry-interval", 250*time.Millisecond, "sampler tick and snapshot-ship period for the live telemetry")
		statsIntv   = flag.Duration("stats-interval", 0, "print a one-line periodic status to stderr at this period (0 = off)")
		metricsJSON = flag.String("metrics-json", "", "write the sampled metric time-series as JSON to this file at end of run (\"-\" = stdout)")
	)
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if *peers == "" || len(addrs) == 0 {
		fatal(fmt.Errorf("-peers is required (one host:port per node)"))
	}
	if *nodes != 0 && *nodes != len(addrs) {
		fatal(fmt.Errorf("-nodes %d disagrees with %d peer addresses", *nodes, len(addrs)))
	}
	nn := len(addrs)
	if *id < 0 || *id >= nn {
		fatal(fmt.Errorf("-id %d outside cluster of %d", *id, nn))
	}
	if *app == "synthetic" && *workers == 0 {
		*workers = nn - 1
	}

	// The configuration digest: every member must present the same one
	// at the handshake, since each process independently builds what
	// must be identical cluster replicas. Peer addresses are excluded —
	// hostname spellings may legitimately differ per process; the
	// pair-wise hello already validates ids and cluster size.
	canon := fmt.Sprintf("v1|app=%s|n=%d|iters=%d|cities=%d|nodes=%d|threads=%d|policy=%s|locator=%s|lambda=%g|tinit=%g|nopig=%t|seed=%d|check=%t|r=%d|updates=%d|workers=%d",
		*app, *n, *iters, *cities, nn, *threads, *policy, *loc, *lambda, *tinit, *noPig, *seed, *check, *rep, *updates, *workers)
	h := fnv.New64a()
	h.Write([]byte(canon))

	// member is assigned by Join below; the failure paths (OnFatal, the
	// deadline watchdog, chaos kill) may fire first, so every dump guards
	// against a nil member.
	var member *cluster.Member
	dumpFlight := func() {
		if member == nil || *flightDump <= 0 {
			return
		}
		if rec := member.FlightRecorder(); rec != nil {
			flight.DumpLastN(os.Stderr, []*flight.Recorder{rec}, *flightDump)
		}
	}

	cfg := cluster.Config{
		ID:          memory.NodeID(*id),
		Addrs:       addrs,
		Digest:      h.Sum64(),
		Check:       *check,
		DialTimeout: *timeout,
		FlightCap:   *flightCap,
		OnFatal: func(err error) {
			// The transport's error names the peer/connection that broke
			// (e.g. "read with node 2 failed: ...") — print it verbatim so
			// the operator knows which member to look at.
			fmt.Fprintf(os.Stderr, "dsmnode %d: cluster broken, aborting: %v\n", *id, err)
			dumpFlight()
			os.Exit(exitAbort)
		},
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dsmnode: "+format+"\n", args...)
		}
	}
	if *deadline > 0 {
		time.AfterFunc(*deadline, func() {
			fmt.Fprintf(os.Stderr, "dsmnode %d: deadline %v exceeded with the run unfinished, aborting\n", *id, *deadline)
			dumpFlight()
			os.Exit(exitAbort)
		})
	}
	var err error
	member, err = cluster.Join(cfg)
	if err != nil {
		fatal(err)
	}

	// Live telemetry is always on, independent of -obs-addr: every
	// member carries a registry and hot-object sketch and ships compact
	// snapshots to node 0 so the coordinator's /metrics is the cluster
	// view even when only node 0 exposes a listener. The observability
	// flags are excluded from the config digest, so mixed flag sets
	// across members still join.
	reg := telemetry.NewRegistry(*id, fmt.Sprintf("policy=%q", *policy))
	sink := telemetry.NewSink(0)
	reg.AttachSink(sink)
	registerMemberMetrics(reg, member, nn)
	if *telInterval <= 0 {
		*telInterval = 250 * time.Millisecond
	}
	var (
		telOnce sync.Once
		telStop = make(chan struct{})
		telDone = make(chan struct{})
		sampler *telemetry.Sampler
		loopUp  bool
	)
	stopTel := func() {
		telOnce.Do(func() { close(telStop) })
		if loopUp {
			<-telDone
			// One final ship so node 0's aggregate holds each member's
			// end-of-run state (best-effort: dropped if the transport is
			// already down).
			member.ShipTelemetry(reg.Snapshot())
		}
	}
	writeMetrics := func() {
		if *metricsJSON == "" || sampler == nil {
			return
		}
		werr := func() error {
			if *metricsJSON == "-" {
				return sampler.WriteJSON(os.Stdout)
			}
			f, ferr := os.Create(*metricsJSON)
			if ferr != nil {
				return ferr
			}
			if ferr := sampler.WriteJSON(f); ferr != nil {
				f.Close()
				return ferr
			}
			return f.Close()
		}()
		if werr != nil {
			fmt.Fprintf(os.Stderr, "dsmnode %d: metrics-json: %v\n", *id, werr)
		}
	}

	var obs *obshttp.Server
	if *obsAddr != "" {
		obs = serveObs(*obsAddr, *id, member, reg)
	}
	if *statsIntv > 0 {
		go func() {
			t := time.NewTicker(*statsIntv)
			defer t.Stop()
			for {
				select {
				case <-telStop:
					return
				case <-t.C:
					line := fmt.Sprintf("dsmnode %d: frames=%d inbox=%d/%d accesses=%d",
						*id, member.DataFrames(), member.InboxLen(), member.PeakDepth(), sink.Total())
					if top := sink.Top(1); len(top) > 0 {
						line += fmt.Sprintf(" hot=obj%d(%d, %.0f%% remote)",
							top[0].Obj, top[0].Count, 100*top[0].Remote())
					}
					fmt.Fprintln(os.Stderr, line)
				}
			}
		}()
	}
	if *chaosKill > 0 {
		// Die abruptly — no Leave, no AbortApp — once enough engine
		// traffic has flowed that the run is demonstrably mid-flight. The
		// survivors must detect the death and exit nonzero within their
		// deadlines: the clean-abort guarantee this flag exists to test.
		go func() {
			for member.DataFrames() < *chaosKill {
				time.Sleep(200 * time.Microsecond)
			}
			fmt.Fprintf(os.Stderr, "dsmnode %d: chaos kill after %d data frames\n", *id, member.DataFrames())
			dumpFlight()
			os.Exit(exitChaosKill)
		}()
	}

	o := apps.Options{
		Nodes: nn, Threads: *threads, Policy: *policy, Locator: *loc,
		Lambda: *lambda, TInit: *tinit, NoPiggyback: *noPig, Seed: *seed,
		Engine: "live", Check: *check, Oracle: *check, Multi: member,
		Telemetry: sink, Metrics: reg,
		// The sampler is built once the engine exists so its frozen
		// scalar list covers the engine-registered metrics too; the
		// tick/ship loop then runs for the life of the app.
		OnCluster: func(*dsm.Cluster) {
			sampler = telemetry.NewSampler(reg, 4096)
			loopUp = true
			go func() {
				defer close(telDone)
				t := time.NewTicker(*telInterval)
				defer t.Stop()
				for {
					select {
					case <-telStop:
						return
					case <-t.C:
						sampler.Tick(time.Now().UnixNano())
						member.ShipTelemetry(reg.Snapshot())
					}
				}
			}()
		},
	}
	var res apps.Result
	switch *app {
	case "asp":
		res, err = apps.RunASP(*n, o)
	case "sor":
		res, err = apps.RunSOR(*n, *iters, o)
	case "nbody":
		res, err = apps.RunNBody(*n, *iters, o)
	case "tsp":
		res, err = apps.RunTSP(*cities, o)
	case "synthetic":
		if nn < *workers+1 {
			err = fmt.Errorf("synthetic with %d workers needs at least %d nodes", *workers, *workers+1)
		} else {
			res, err = apps.RunSynthetic(apps.SyntheticOpts{
				Repetition: *rep, TotalUpdates: *updates, Workers: *workers,
			}, o)
		}
	default:
		err = fmt.Errorf("unknown app %q", *app)
	}
	if err != nil {
		// Tell the cluster (unless the error *is* the cluster verdict,
		// in which case every member already has it). AbortApp's return
		// may carry a sharper classification (peer death when the
		// verdict exchange wedged and the grace timer severed).
		if !member.Completed() {
			if aerr := member.AbortApp(err); aerr != nil && exitCode(aerr) != exitOther {
				err = aerr
			}
		}
		fmt.Fprintf(os.Stderr, "dsmnode %d: %v\n", *id, err)
		dumpFlight()
		// On node 0 the coordinator merges rings on the abort path too, so
		// a timeline export still works when the run died verifiably.
		if *id == 0 {
			exportTimeline(member.FlightTimeline(), *flightText, *flightTrace)
		}
		stopTel()
		writeMetrics()
		obs.Close()
		member.Leave()
		os.Exit(exitCode(err))
	}
	stopTel()
	if *id == 0 {
		if *jsonOut {
			if jerr := writeArtifact(os.Stdout, canon, nn, *check, res); jerr != nil {
				fmt.Fprintf(os.Stderr, "dsmnode %d: json: %v\n", *id, jerr)
				os.Exit(exitOther)
			}
		} else {
			fmt.Printf("%s over %d processes\n", res.App, nn)
			fmt.Print(res.Metrics.Summary())
			if *check {
				fmt.Printf("check          invariants OK, oracle OK (%d ops), digest %#x\n",
					res.OracleOps, res.Digest)
			}
			if *flightCap > 0 {
				fmt.Printf("flight         %d event(s) in the merged timeline\n", len(res.Flight))
			}
		}
		exportTimeline(res.Flight, *flightText, *flightTrace)
	} else if *verbose {
		fmt.Fprintf(os.Stderr, "dsmnode %d: ok (digest %#x)\n", *id, res.Digest)
	}
	writeMetrics()
	obs.Close()
	member.Leave()
}

// artifact is the -json run record (node 0): the merged cluster view in
// one machine-readable object, mirroring what the text report prints.
type artifact struct {
	App       string        `json:"app"`
	Config    string        `json:"config"` // the canonical config string behind the handshake digest
	Processes int           `json:"processes"`
	Metrics   stats.Metrics `json:"metrics"`
	Check     bool          `json:"check"`
	Digest    string        `json:"digest,omitempty"`
	OracleOps int           `json:"oracle_ops,omitempty"`
	Flight    int           `json:"flight_events"`
}

func writeArtifact(w io.Writer, canon string, nn int, check bool, res apps.Result) error {
	a := artifact{
		App:       res.App,
		Config:    canon,
		Processes: nn,
		Metrics:   res.Metrics,
		Check:     check,
		OracleOps: res.OracleOps,
		Flight:    len(res.Flight),
	}
	if check {
		a.Digest = fmt.Sprintf("%#x", res.Digest)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// exportTimeline writes the merged cluster timeline to the requested
// sinks ("-" = stdout). Export failures warn but do not change the exit
// code: the run's verdict is already decided.
func exportTimeline(events []flight.Event, textPath, tracePath string) {
	write := func(path, what string, render func(io.Writer) error) {
		if path == "" {
			return
		}
		err := func() error {
			if path == "-" {
				return render(os.Stdout)
			}
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := render(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsmnode: %s: %v\n", what, err)
		}
	}
	write(textPath, "flight-text", func(w io.Writer) error { return flight.WriteText(w, events) })
	write(tracePath, "flight-trace", func(w io.Writer) error { return flight.WriteChromeTrace(w, events) })
}

// registerMemberMetrics wires the cluster-member instruments into the
// registry: frame/byte counters per peer, queue depth and peak,
// heartbeat liveness, and flight-recorder totals. Engine-level metrics
// (protocol counters, latency histograms) are registered by the live
// engine itself via Options.Metrics.
func registerMemberMetrics(reg *telemetry.Registry, member *cluster.Member, nn int) {
	reg.GaugeFunc("dsm_up",
		"1 while this member is alive and serving telemetry.", "",
		func() int64 { return 1 })
	reg.CounterFunc("dsm_data_frames_total",
		"Engine data frames sent plus received by this member.", "",
		member.DataFrames)
	reg.GaugeFunc("dsm_inbox_depth",
		"Current depth of this member's data inbox.", "",
		func() int64 { return int64(member.InboxLen()) })
	reg.GaugeFunc("dsm_inbox_peak",
		"High-water mark of the data inbox depth.", "",
		func() int64 { return int64(member.PeakDepth()) })
	if rec := member.FlightRecorder(); rec != nil {
		reg.CounterFunc("dsm_flight_events_total",
			"Flight-recorder events recorded since start.", "",
			func() int64 { return int64(rec.Total()) })
		reg.GaugeFunc("dsm_flight_events_buffered",
			"Flight-recorder events currently buffered in the ring.", "",
			func() int64 { return int64(rec.Len()) })
	}
	self := reg.Node()
	for j := 0; j < nn; j++ {
		if j == self {
			continue
		}
		p := memory.NodeID(j)
		label := fmt.Sprintf("peer=\"%d\"", j)
		stat := func(get func(tcp.PeerStats) int64) func() int64 {
			return func() int64 {
				ps, ok := member.PeerStats(p)
				if !ok {
					return 0
				}
				return get(ps)
			}
		}
		reg.CounterFunc("dsm_peer_frames_sent_total",
			"Frames sent to this peer across all channels.", label,
			stat(func(ps tcp.PeerStats) int64 { return ps.FramesSent }))
		reg.CounterFunc("dsm_peer_frames_recv_total",
			"Frames received from this peer across all channels.", label,
			stat(func(ps tcp.PeerStats) int64 { return ps.FramesRecv }))
		reg.CounterFunc("dsm_peer_bytes_sent_total",
			"Wire bytes (headers included) sent to this peer.", label,
			stat(func(ps tcp.PeerStats) int64 { return ps.BytesSent }))
		reg.CounterFunc("dsm_peer_bytes_recv_total",
			"Wire bytes (headers included) received from this peer.", label,
			stat(func(ps tcp.PeerStats) int64 { return ps.BytesRecv }))
		reg.CounterFunc("dsm_peer_heartbeats_total",
			"Heartbeat frames received from this peer.", label,
			stat(func(ps tcp.PeerStats) int64 { return ps.Heartbeats }))
		reg.GaugeFunc("dsm_peer_silence_ms",
			"Milliseconds since anything was last received from this peer (0 until first receipt).", label,
			func() int64 {
				ps, ok := member.PeerStats(p)
				if !ok || ps.LastRecv == 0 {
					return 0
				}
				return (time.Now().UnixNano() - ps.LastRecv) / 1e6
			})
	}
}

// serveObs starts the debug listener: Go's pprof handlers, /metrics in
// Prometheus text exposition (on node 0 the cluster-aggregated view —
// this member's fresh snapshot merged with every shipped one), and
// /flight rendering this node's ring mid-run. Serving is best-effort —
// a dead listener never fails the run — but the returned server is
// closed on the exit paths so the accept goroutine never outlives the
// run.
func serveObs(addr string, id int, member *cluster.Member, reg *telemetry.Registry) *obshttp.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		snaps := member.TelemetrySnapshots()
		own := reg.Snapshot()
		replaced := false
		for i := range snaps {
			if snaps[i].Node == own.Node {
				snaps[i] = own
				replaced = true
			}
		}
		if !replaced {
			snaps = append(snaps, own)
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		telemetry.WriteProm(w, snaps)
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, _ *http.Request) {
		rec := member.FlightRecorder()
		if rec == nil {
			http.Error(w, "flight recorder disabled (run with -flight N)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		flight.WriteText(w, rec.Snapshot())
	})
	srv, err := obshttp.Start(addr, mux)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsmnode %d: obs listener: %v\n", id, err)
		return nil
	}
	return srv
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsmnode:", err)
	os.Exit(exitCode(err))
}
