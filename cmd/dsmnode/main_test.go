package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
)

// The dsmnode binary is built once in TestMain (a per-test TempDir
// would vanish when its owning test ends).
var builtPath string
var buildErr error

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "dsmnode-test")
	if err != nil {
		buildErr = err
		os.Exit(m.Run())
	}
	defer os.RemoveAll(dir)
	builtPath = filepath.Join(dir, "dsmnode")
	if out, err := exec.Command("go", "build", "-o", builtPath, ".").CombinedOutput(); err != nil {
		buildErr = fmt.Errorf("go build: %v\n%s", err, out)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func dsmnodeBinary(t *testing.T) string {
	t.Helper()
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return builtPath
}

// freeAddrs reserves n distinct loopback ports and releases them just
// before the daemons start (Go listeners use SO_REUSEADDR; on loopback
// the reuse window is not contended in practice).
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

var digestRE = regexp.MustCompile(`digest (0x[0-9a-f]+)`)

// runCluster launches one dsmnode process per node with the given app
// flags and returns node 0's stdout. Any nonzero exit fails the test.
func runCluster(t *testing.T, nodes int, appFlags ...string) string {
	t.Helper()
	bin := dsmnodeBinary(t)
	peers := strings.Join(freeAddrs(t, nodes), ",")
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	type proc struct {
		id  int
		out []byte
		err error
	}
	results := make(chan proc, nodes)
	for id := 0; id < nodes; id++ {
		go func(id int) {
			args := append([]string{
				"-id", fmt.Sprint(id), "-peers", peers, "-nodes", fmt.Sprint(nodes), "-check",
			}, appFlags...)
			out, err := exec.CommandContext(ctx, bin, args...).CombinedOutput()
			results <- proc{id: id, out: out, err: err}
		}(id)
	}
	var node0 string
	for i := 0; i < nodes; i++ {
		p := <-results
		if p.err != nil {
			t.Fatalf("dsmnode %d failed: %v\n%s", p.id, p.err, p.out)
		}
		if p.id == 0 {
			node0 = string(p.out)
		}
	}
	return node0
}

func digestOf(t *testing.T, out string) string {
	t.Helper()
	m := digestRE.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no digest in node 0 output:\n%s", out)
	}
	return m[1]
}

// TestFourProcessASP is the acceptance gate as a test: a 4-node
// multi-process localhost cluster runs ASP over the TCP backend with
// -check clean, and its final-memory digest matches the simulator's
// for the same configuration (the sim digest equals the in-process
// live engine's by the PR-4 cross-engine gate).
func TestFourProcessASP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short")
	}
	out := runCluster(t, 4, "-app", "asp", "-n", "24")
	got := digestOf(t, out)
	ref, err := apps.RunASP(24, apps.Options{Nodes: 4, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("%#x", ref.Digest); got != want {
		t.Fatalf("cluster digest %s != sim digest %s\n%s", got, want, out)
	}
	if !strings.Contains(out, "oracle OK") {
		t.Fatalf("check line missing oracle verdict:\n%s", out)
	}
}

// TestFourProcessSOR: the second registered application over the same
// path, exercising bulk views and migration under FT1 as well.
func TestFourProcessSOR(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short")
	}
	out := runCluster(t, 4, "-app", "sor", "-n", "20", "-iters", "3", "-policy", "FT1")
	got := digestOf(t, out)
	ref, err := apps.RunSOR(20, 3, apps.Options{Nodes: 4, Policy: "FT1", Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("%#x", ref.Digest); got != want {
		t.Fatalf("cluster digest %s != sim digest %s\n%s", got, want, out)
	}
}

// TestConfigMismatchExitsNonzero: a member started with different app
// flags must be rejected and exit nonzero — the config-digest path end
// to end.
func TestConfigMismatchExitsNonzero(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short")
	}
	bin := dsmnodeBinary(t)
	peers := strings.Join(freeAddrs(t, 2), ",")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	outc := make(chan error, 2)
	run := func(id int, size string) {
		out, err := exec.CommandContext(ctx, bin,
			"-id", fmt.Sprint(id), "-peers", peers, "-app", "asp", "-n", size).CombinedOutput()
		if err == nil {
			outc <- fmt.Errorf("node %d exited zero despite config mismatch:\n%s", id, out)
			return
		}
		if !strings.Contains(string(out), "config digest") && !strings.Contains(string(out), "rejected") {
			outc <- fmt.Errorf("node %d error does not explain the mismatch:\n%s", id, out)
			return
		}
		outc <- nil
	}
	go run(0, "24")
	go run(1, "32") // different problem size → different config digest
	for i := 0; i < 2; i++ {
		if err := <-outc; err != nil {
			t.Fatal(err)
		}
	}
}

// exitCodeOf extracts the process exit code from an exec error.
func exitCodeOf(err error) int {
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	return -1
}

// TestConfigMismatchExitCode: the handshake rejection must exit with
// the config-mismatch code (3) on both sides.
func TestConfigMismatchExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short")
	}
	bin := dsmnodeBinary(t)
	peers := strings.Join(freeAddrs(t, 2), ",")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	codes := make(chan int, 2)
	run := func(id int, size string) {
		out, err := exec.CommandContext(ctx, bin,
			"-id", fmt.Sprint(id), "-peers", peers, "-app", "asp", "-n", size).CombinedOutput()
		if code := exitCodeOf(err); code != 3 {
			t.Errorf("node %d exited %d, want 3 (config mismatch)\n%s", id, code, out)
		}
		codes <- 0
	}
	go run(0, "24")
	go run(1, "32")
	<-codes
	<-codes
}

// TestBootstrapTimeoutExitCode: a member whose peers never start must
// give up within its join timeout and exit with the bootstrap code (4).
func TestBootstrapTimeoutExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short")
	}
	bin := dsmnodeBinary(t)
	peers := strings.Join(freeAddrs(t, 2), ",")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	start := time.Now()
	out, err := exec.CommandContext(ctx, bin,
		"-id", "1", "-peers", peers, "-app", "asp", "-n", "24",
		"-join-timeout", "2s").CombinedOutput()
	if code := exitCodeOf(err); code != 4 {
		t.Fatalf("exit code %d, want 4 (bootstrap timeout)\n%s", code, out)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("gave up only after %v with a 2s join timeout", elapsed)
	}
	if !strings.Contains(string(out), "node 0") {
		t.Fatalf("error does not name the unreachable peer:\n%s", out)
	}
}

// TestChaosKillAbortsCluster is the multi-process chaos smoke: a
// 4-node cluster runs ASP while one member kills itself mid-run
// (-chaos-kill-after). Every process must exit nonzero within the
// deadline — the victim with the chaos code (7), every survivor with a
// failure-domain code, none by the watchdog alone hanging on.
func TestChaosKillAbortsCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short")
	}
	const nodes, victim = 4, 2
	bin := dsmnodeBinary(t)
	peers := strings.Join(freeAddrs(t, nodes), ",")
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	type proc struct {
		id   int
		code int
		out  string
	}
	results := make(chan proc, nodes)
	for id := 0; id < nodes; id++ {
		go func(id int) {
			args := []string{
				"-id", fmt.Sprint(id), "-peers", peers, "-nodes", fmt.Sprint(nodes),
				"-app", "asp", "-n", "32", "-check", "-deadline", "60s",
			}
			if id == victim {
				args = append(args, "-chaos-kill-after", "200")
			}
			out, err := exec.CommandContext(ctx, bin, args...).CombinedOutput()
			results <- proc{id: id, code: exitCodeOf(err), out: string(out)}
		}(id)
	}
	start := time.Now()
	for i := 0; i < nodes; i++ {
		p := <-results
		if p.code == 0 {
			t.Fatalf("node %d exited zero despite the chaos kill\n%s", p.id, p.out)
		}
		if p.id == victim {
			if p.code != 7 {
				t.Errorf("victim exited %d, want 7 (chaos self-kill)\n%s", p.code, p.out)
			}
			continue
		}
		// Survivors abort on peer death (5); a survivor that was already
		// in the verdict exchange may surface it as a cluster failure
		// instead — any nonzero is the guarantee, 5 the common case.
		if p.code != 5 && p.code != 1 && p.code != 6 {
			t.Errorf("survivor %d exited %d, want a failure-domain code\n%s", p.id, p.code, p.out)
		}
		if p.code == 5 && !strings.Contains(p.out, "node") {
			t.Errorf("survivor %d abort message does not name a peer:\n%s", p.id, p.out)
		}
	}
	if elapsed := time.Since(start); elapsed > 75*time.Second {
		t.Fatalf("cluster took %v to die — the abort bound failed", elapsed)
	}
}
