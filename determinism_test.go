package dsm_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/bench"
)

// TestFig2SmallestConfigDeterministic is the golden-stats regression for
// the simulation kernel: Figure 2's smallest configuration (the ASP
// benchmark on 2 processors) run twice must produce byte-identical
// metrics — the same virtual execution time, the same final quiesce time,
// the same protocol counters, and the same kernel event/activation
// counts. Any scheduling, queueing or allocation-reuse change that
// perturbs event order shows up here immediately.
func TestFig2SmallestConfigDeterministic(t *testing.T) {
	for _, pol := range []string{"NoHM", "AT"} {
		s := bench.DefaultSizes()
		run := func() apps.Result {
			res, err := apps.RunASP(s.ASPN, apps.Options{Nodes: 2, Policy: pol})
			if err != nil {
				t.Fatalf("%s: %v", pol, err)
			}
			return res
		}
		m1, m2 := run().Metrics, run().Metrics
		if m1.ExecTime != m2.ExecTime {
			t.Errorf("%s: ExecTime %v vs %v", pol, m1.ExecTime, m2.ExecTime)
		}
		if m1.FinalTime != m2.FinalTime {
			t.Errorf("%s: FinalTime %v vs %v", pol, m1.FinalTime, m2.FinalTime)
		}
		if m1.Kernel != m2.Kernel {
			t.Errorf("%s: kernel stats %+v vs %+v", pol, m1.Kernel, m2.Kernel)
		}
		if m1.Counters != m2.Counters {
			t.Errorf("%s: protocol counters diverge:\n%+v\nvs\n%+v", pol, m1.Counters, m2.Counters)
		}
		if m1.Kernel.Events == 0 || m1.TotalMsgs(true) == 0 {
			t.Errorf("%s: implausibly empty run: %+v", pol, m1.Kernel)
		}
	}
}
