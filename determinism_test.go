package dsm_test

import (
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/bench"
)

// TestFig2SmallestConfigDeterministic is the golden-stats regression for
// the simulation kernel: Figure 2's smallest configuration (the ASP
// benchmark on 2 processors) run twice must produce byte-identical
// metrics — the same virtual execution time, the same final quiesce time,
// the same protocol counters, and the same kernel event/activation
// counts. Any scheduling, queueing or allocation-reuse change that
// perturbs event order shows up here immediately.
func TestFig2SmallestConfigDeterministic(t *testing.T) {
	for _, pol := range []string{"NoHM", "AT"} {
		s := bench.DefaultSizes()
		run := func() apps.Result {
			res, err := apps.RunASP(s.ASPN, apps.Options{Nodes: 2, Policy: pol})
			if err != nil {
				t.Fatalf("%s: %v", pol, err)
			}
			return res
		}
		m1, m2 := run().Metrics, run().Metrics
		if m1.ExecTime != m2.ExecTime {
			t.Errorf("%s: ExecTime %v vs %v", pol, m1.ExecTime, m2.ExecTime)
		}
		if m1.FinalTime != m2.FinalTime {
			t.Errorf("%s: FinalTime %v vs %v", pol, m1.FinalTime, m2.FinalTime)
		}
		if m1.Kernel != m2.Kernel {
			t.Errorf("%s: kernel stats %+v vs %+v", pol, m1.Kernel, m2.Kernel)
		}
		if m1.Counters != m2.Counters {
			t.Errorf("%s: protocol counters diverge:\n%+v\nvs\n%+v", pol, m1.Counters, m2.Counters)
		}
		if m1.Kernel.Events == 0 || m1.TotalMsgs(true) == 0 {
			t.Errorf("%s: implausibly empty run: %+v", pol, m1.Kernel)
		}
	}
}

// TestFig3SmallestConfigDeterministic pins Figure 3's smallest grid —
// ASP and SOR at size 128, the FT2-vs-AT comparison on eight nodes —
// through the full bench pipeline (experiment pool, reassembly, paired
// percentage computation). Two runs must produce byte-identical rows:
// the improvement percentages are quotients of virtual times and
// message counts, so any kernel or protocol nondeterminism is amplified
// here, not averaged away.
func TestFig3SmallestConfigDeterministic(t *testing.T) {
	run := func() string {
		// Check exercises the policy-independence digest gate too: FT2
		// and AT must leave identical final memory at every point.
		rows, err := bench.Fig3([]int{128}, []int{128}, 0, 0, bench.RunOpts{Check: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("got %d rows, want 2", len(rows))
		}
		return fmt.Sprintf("%+v", rows)
	}
	r1, r2 := run(), run()
	if r1 != r2 {
		t.Errorf("fig3 rows diverge across identical runs:\n%s\nvs\n%s", r1, r2)
	}
}

// TestFig5SmallestConfigDeterministic pins Figure 5's smallest
// configuration — the synthetic single-writer benchmark at repetition 2
// under all four protocols (NM, FT1, FT2, AT) — the same way. The
// normalized columns divide by the slowest protocol in the group, so a
// single perturbed run skews every row of the group.
func TestFig5SmallestConfigDeterministic(t *testing.T) {
	run := func() string {
		rows, err := bench.Fig5(bench.Fig5Config{Repetitions: []int{2}}, bench.RunOpts{Check: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(bench.Fig5Protocols) {
			t.Fatalf("got %d rows, want %d", len(rows), len(bench.Fig5Protocols))
		}
		return fmt.Sprintf("%+v", rows)
	}
	r1, r2 := run(), run()
	if r1 != r2 {
		t.Errorf("fig5 rows diverge across identical runs:\n%s\nvs\n%s", r1, r2)
	}
}
