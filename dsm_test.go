package dsm_test

import (
	"fmt"
	"strings"
	"testing"

	dsm "repro"
)

func TestQuickstartCounter(t *testing.T) {
	c := dsm.New(dsm.Config{Nodes: 4, Policy: "AT", DebugWire: true})
	counter := c.NewObject("counter", 1, 0)
	lock := c.NewLock(0)
	m, err := c.Run(4, func(th dsm.Thread) {
		for i := 0; i < 25; i++ {
			th.Acquire(lock)
			th.Write(counter, 0, th.Read(counter, 0)+1)
			th.Release(lock)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Data(counter)[0]; got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
	if m.ExecTime <= 0 {
		t.Fatal("no time elapsed")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := dsm.New(dsm.Config{Nodes: 2})
	if c.PolicyName() != "AT" {
		t.Fatalf("default policy = %s", c.PolicyName())
	}
	if c.Nodes() != 2 {
		t.Fatalf("nodes = %d", c.Nodes())
	}
}

func TestConfigPanicsOnBadInput(t *testing.T) {
	cases := []dsm.Config{
		{},                               // no nodes
		{Nodes: 2, Policy: "bogus"},      // bad policy
		{Nodes: 2, Locator: "bogus"},     // bad locator
		{Nodes: 2, Network: "tokenring"}, // bad network
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			dsm.New(cfg)
		}()
	}
}

func TestArrayPlacementRoundRobin(t *testing.T) {
	c := dsm.New(dsm.Config{Nodes: 4})
	a := c.NewArray("m", 8, 4, dsm.RoundRobin)
	for i := 0; i < 8; i++ {
		if got := c.HomeOf(a.Object(i)); got != dsm.NodeID(i%4) {
			t.Fatalf("row %d homed at %d", i, got)
		}
	}
}

func TestArrayPlacementFixedAndBlocked(t *testing.T) {
	c := dsm.New(dsm.Config{Nodes: 4})
	f := c.NewArray("f", 4, 2, dsm.Fixed(2))
	for i := 0; i < 4; i++ {
		if c.HomeOf(f.Object(i)) != 2 {
			t.Fatal("Fixed placement broken")
		}
	}
	b := c.NewArray("b", 8, 2, dsm.Blocked(8))
	want := []dsm.NodeID{0, 0, 1, 1, 2, 2, 3, 3}
	for i, w := range want {
		if c.HomeOf(b.Object(i)) != w {
			t.Fatalf("Blocked: row %d at %d, want %d", i, c.HomeOf(b.Object(i)), w)
		}
	}
}

func TestArrayTypedAccessors(t *testing.T) {
	c := dsm.New(dsm.Config{Nodes: 2, DebugWire: true})
	a := c.NewArray("m", 2, 4, dsm.RoundRobin)
	a.InitInt64(0, 1, -5)
	a.InitFloat64(1, 2, 3.25)
	bar := c.NewBarrier(0, 2)
	_, err := c.Run(2, func(th dsm.Thread) {
		if th.ID() == 0 {
			if got := a.Int64(th, 0, 1); got != -5 {
				t.Errorf("Int64 = %d", got)
			}
			if got := a.Float64(th, 1, 2); got != 3.25 {
				t.Errorf("Float64 = %v", got)
			}
			a.SetInt64(th, 0, 0, 42)
			a.SetFloat64(th, 1, 3, -1.5)
		}
		th.Barrier(bar)
		if th.ID() == 1 {
			if got := a.Int64(th, 0, 0); got != 42 {
				t.Errorf("post-barrier Int64 = %d", got)
			}
			if got := a.Float64(th, 1, 3); got != -1.5 {
				t.Errorf("post-barrier Float64 = %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.DataInt64(0)[0]; got != 42 {
		t.Fatalf("DataInt64 = %d", got)
	}
	if got := a.DataFloat64(1)[3]; got != -1.5 {
		t.Fatalf("DataFloat64 = %v", got)
	}
}

func TestSingleWriterRowsMigrateToWriters(t *testing.T) {
	// The ASP/SOR situation in miniature: rows placed round-robin, each
	// thread repeatedly writes its own rows; AT must relocate every row
	// to its writer (§5.1: "the home migration protocol automatically
	// makes the writing node the home node").
	const nodes, rows, iters = 4, 8, 6
	c := dsm.New(dsm.Config{Nodes: nodes, Policy: "AT", DebugWire: true})
	a := c.NewArray("m", rows, 8, dsm.RoundRobin)
	bar := c.NewBarrier(0, nodes)
	_, err := c.Run(nodes, func(th dsm.Thread) {
		me := th.ID()
		for it := 0; it < iters; it++ {
			for r := 0; r < rows; r++ {
				// Owner-computes over a shifted assignment so initial
				// homes are wrong for every row.
				if r%nodes == (me+1)%nodes {
					a.SetInt64(th, r, 0, int64(100*it+r+1))
				}
			}
			th.Barrier(bar)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		want := dsm.NodeID((r%nodes + nodes - 1) % nodes)
		if got := c.HomeOf(a.Object(r)); got != want {
			t.Errorf("row %d homed at %d, want writer %d", r, got, want)
		}
	}
}

func TestWorkerPlacement(t *testing.T) {
	c := dsm.New(dsm.Config{Nodes: 3, DebugWire: true})
	obj := c.NewObject("o", 1, 0)
	lock := c.NewLock(0)
	var ws []dsm.Worker
	for i := 1; i <= 2; i++ {
		ws = append(ws, dsm.Worker{
			Node: dsm.NodeID(i), Name: fmt.Sprintf("w%d", i),
			Fn: func(th dsm.Thread) {
				th.Acquire(lock)
				th.Write(obj, 0, th.Read(obj, 0)+1)
				th.Release(lock)
			},
		})
	}
	if _, err := c.RunWorkers(ws); err != nil {
		t.Fatal(err)
	}
	if got := c.Data(obj)[0]; got != 2 {
		t.Fatalf("counter = %d", got)
	}
}

func TestPoliciesDiffer(t *testing.T) {
	// Same workload under NoHM and AT: AT must migrate, NoHM must not,
	// and the shared state must agree.
	run := func(policy string) (dsm.Metrics, []uint64) {
		c := dsm.New(dsm.Config{Nodes: 2, Policy: policy, DebugWire: true})
		obj := c.NewObject("o", 2, 0)
		lock := c.NewLock(0)
		m, err := c.RunWorkers([]dsm.Worker{{Node: 1, Name: "w", Fn: func(th dsm.Thread) {
			for i := 0; i < 5; i++ {
				th.Acquire(lock)
				th.Write(obj, 0, uint64(i+1))
				th.Release(lock)
			}
		}}})
		if err != nil {
			t.Fatal(err)
		}
		return m, c.Data(obj)
	}
	mNo, dNo := run("NoHM")
	mAT, dAT := run("AT")
	if mNo.Migrations != 0 || mAT.Migrations == 0 {
		t.Fatalf("migrations: NoHM=%d AT=%d", mNo.Migrations, mAT.Migrations)
	}
	if dNo[0] != dAT[0] || dNo[0] != 5 {
		t.Fatalf("final state disagrees: %v vs %v", dNo, dAT)
	}
	if mAT.TotalMsgs(false) >= mNo.TotalMsgs(false) {
		t.Fatalf("AT should save messages: %d vs %d", mAT.TotalMsgs(false), mNo.TotalMsgs(false))
	}
}

func TestTInitAblation(t *testing.T) {
	// §4.2 sets T_init = 1 "to speed up the initial data relocation". A
	// larger T_init must delay (here: with few intervals, entirely
	// prevent) the single-writer migration.
	run := func(tinit float64) dsm.Metrics {
		c := dsm.New(dsm.Config{Nodes: 2, Policy: "AT", TInit: tinit, DebugWire: true})
		obj := c.NewObject("o", 2, 0)
		lock := c.NewLock(0)
		m, err := c.RunWorkers([]dsm.Worker{{Node: 1, Name: "w", Fn: func(th dsm.Thread) {
			for i := 0; i < 3; i++ {
				th.Acquire(lock)
				th.Write(obj, 0, uint64(i+1))
				th.Release(lock)
			}
		}}})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	eager := run(1)
	lazy := run(10)
	if eager.Migrations != 1 || lazy.Migrations != 0 {
		t.Fatalf("migrations: TInit=1 -> %d (want 1), TInit=10 -> %d (want 0)",
			eager.Migrations, lazy.Migrations)
	}
}

func TestLambdaAblationChangesBehavior(t *testing.T) {
	// Deterministic discrimination of λ (Eq. 2). Phase 1 migrates the home
	// to writer B (leaving R=0, E=0). Phase 2: one reader faults through
	// the stale forwarding chain, so R=1 at the new home. Phase 3: writer
	// D performs exactly three write intervals. Its decisive fault sees
	// C=2 against T = 1 + λ·(R − αE) = 1 + λ: with λ=1 (T=2) the home
	// migrates again; with λ=2 (T=3) it does not.
	run := func(lambda float64) dsm.Metrics {
		c := dsm.New(dsm.Config{Nodes: 4, Policy: "AT", Lambda: lambda, DebugWire: true})
		obj := c.NewObject("o", 2, 0)
		lock := c.NewLock(0)
		bar := c.NewBarrier(1, 3) // manager on an otherwise idle node
		m, err := c.RunWorkers([]dsm.Worker{
			{Node: 2, Name: "B", Fn: func(th dsm.Thread) {
				for i := 0; i < 2; i++ { // 2 intervals: diff, then migrating fault
					th.Acquire(lock)
					th.Write(obj, 0, uint64(i+1))
					th.Release(lock)
				}
				th.Barrier(bar)
				th.Barrier(bar)
			}},
			{Node: 3, Name: "C", Fn: func(th dsm.Thread) {
				th.Barrier(bar)
				_ = th.Read(obj, 0) // redirected 0 -> 2: R becomes 1
				th.Barrier(bar)
			}},
			{Node: 0, Name: "D", Fn: func(th dsm.Thread) {
				th.Barrier(bar)
				th.Barrier(bar)
				for i := 0; i < 3; i++ {
					th.Acquire(lock)
					th.Write(obj, 0, uint64(10+i))
					th.Release(lock)
				}
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if got := run(1).Migrations; got != 2 {
		t.Fatalf("λ=1 migrations = %d, want 2", got)
	}
	if got := run(2).Migrations; got != 1 {
		t.Fatalf("λ=2 migrations = %d, want 1", got)
	}
}

func TestArrayBadShapePanics(t *testing.T) {
	c := dsm.New(dsm.Config{Nodes: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.NewArray("bad", 0, 3, dsm.RoundRobin)
}

func TestFacadeTracing(t *testing.T) {
	tr := dsm.NewTrace()
	c := dsm.New(dsm.Config{Nodes: 2, Policy: "NoHM", Trace: tr, DebugWire: true})
	obj := c.NewObject("o", 2, 0)
	lock := c.NewLock(0)
	_, err := c.RunWorkers([]dsm.Worker{{Node: 1, Name: "w", Fn: func(th dsm.Thread) {
		for i := 0; i < 4; i++ {
			th.Acquire(lock)
			th.Write(obj, 0, uint64(i+1))
			th.Release(lock)
		}
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("no events recorded")
	}
	profiles := dsm.AnalyzeTrace(tr)
	if len(profiles) != 1 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	if got := profiles[0].Pattern.String(); got != "single-writer-lasting" {
		t.Fatalf("pattern = %s", got)
	}
	if rep := dsm.TraceReport(profiles); rep == "" {
		t.Fatal("empty report")
	}
}

func TestFacadePathCompress(t *testing.T) {
	// Smoke test: the flag plumbs through and preserves correctness.
	for _, on := range []bool{false, true} {
		c := dsm.New(dsm.Config{Nodes: 3, Policy: "FT1", PathCompress: on, DebugWire: true})
		obj := c.NewObject("o", 2, 0)
		lock := c.NewLock(0)
		bar := c.NewBarrier(0, 2)
		_, err := c.RunWorkers([]dsm.Worker{
			{Node: 1, Name: "w", Fn: func(th dsm.Thread) {
				for i := 0; i < 3; i++ {
					th.Acquire(lock)
					th.Write(obj, 0, uint64(i+1))
					th.Release(lock)
				}
				th.Barrier(bar)
			}},
			{Node: 2, Name: "r", Fn: func(th dsm.Thread) {
				th.Barrier(bar)
				th.Acquire(lock)
				if got := th.Read(obj, 0); got != 3 {
					t.Errorf("compress=%v: read %d", on, got)
				}
				th.Release(lock)
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("compress=%v: %v", on, err)
		}
	}
}

func TestFacadeMetricsSummary(t *testing.T) {
	c := dsm.New(dsm.Config{Nodes: 2, DebugWire: true})
	obj := c.NewObject("o", 1, 0)
	lock := c.NewLock(0)
	m, err := c.RunWorkers([]dsm.Worker{{Node: 1, Name: "w", Fn: func(th dsm.Thread) {
		th.Acquire(lock)
		th.Write(obj, 0, 1)
		th.Release(lock)
	}}})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Summary()
	for _, want := range []string{"exec time", "messages", "migrations"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q", want)
		}
	}
}
