// Package dsm is a home-based software distributed shared memory (DSM)
// system with adaptive home migration, reproducing Fang, Wang, Zhu & Lau,
// "A Novel Adaptive Home Migration Protocol in Home-based DSM" (IEEE
// CLUSTER 2004).
//
// The library provides the Global Object Space (GOS) of the paper: an
// object-granularity, home-based implementation of lazy release
// consistency with TreadMarks-style twin/diff multiple-writer support,
// running on a deterministic simulated cluster whose interconnect follows
// Hockney's communication model. Its centerpiece is the per-object
// adaptive home-migration threshold of the paper's §4:
//
//	T_i = max(T_{i-1} + λ·(R_i − α·E_i), T_init)
//
// which migrates an object's home to a lasting single writer while
// suppressing migration under transient write patterns.
//
// # Quick start
//
//	c := dsm.New(dsm.Config{Nodes: 4, Policy: "AT"})
//	counter := c.NewObject("counter", 1, 0)
//	lock := c.NewLock(0)
//	m, err := c.Run(4, func(t dsm.Thread) {
//	    for i := 0; i < 100; i++ {
//	        t.Acquire(lock)
//	        t.Write(counter, 0, t.Read(counter, 0)+1)
//	        t.Release(lock)
//	    }
//	})
//
// Metrics report execution time (virtual), message counts by category,
// network traffic, migrations and redirections — the quantities the
// paper's figures plot.
package dsm

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/gos"
	"repro/internal/hockney"
	"repro/internal/live"
	"repro/internal/live/transport"
	"repro/internal/locator"
	"repro/internal/memory"
	"repro/internal/migration"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Re-exported fundamental types. These are aliases so values flow freely
// between the facade and the internal engine.
type (
	// NodeID identifies a cluster node.
	NodeID = memory.NodeID
	// ObjectID identifies a shared object.
	ObjectID = memory.ObjectID
	// Thread is an application thread; all shared accesses and
	// synchronization go through it. It is an interface implemented by
	// both execution engines (sim and live).
	Thread = proto.Thread
	// Lock names a distributed lock.
	Lock = gos.LockID
	// Barrier names a distributed barrier.
	Barrier = gos.BarrierID
	// Metrics are the per-run statistics.
	Metrics = stats.Metrics
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Worker pins a thread to a node.
	Worker = gos.Worker
	// Trace is an ordered protocol-event log for access-pattern analysis.
	Trace = trace.Trace
	// TraceProfile is one object's classified access pattern.
	TraceProfile = trace.Profile
	// Observer receives protocol-level correctness events (the coherence
	// oracle's hook surface); identical on both engines.
	Observer = proto.Observer
	// Transport carries encoded protocol frames between live-engine
	// nodes (see Config.Transport).
	Transport = transport.Transport
)

// Convenient time units (virtual time).
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Config selects the cluster size, protocol and network for a run.
// Zero values mean "paper defaults": AT policy, forwarding-pointer
// locator, Fast-Ethernet-class network, piggybacking on.
type Config struct {
	// Nodes is the cluster size (required).
	Nodes int
	// Policy picks the migration protocol: "AT" (adaptive, default),
	// "FT<k>" (fixed threshold k), "NoHM"/"NM", "JUMP", "Jackal[<k>]",
	// "Jiajia".
	Policy string
	// Locator picks the home-location mechanism: "fwdptr" (default),
	// "manager", "broadcast" (§3.2).
	Locator string
	// Network: "fastethernet" (default) or "gigabit".
	Network string
	// Lambda is λ of Eq. (2); 0 means the paper's 1.
	Lambda float64
	// TInit is the initial threshold; 0 means the paper's 1.
	TInit float64
	// NoPiggyback disables the §5.2 diff-piggybacking optimization.
	NoPiggyback bool
	// DebugWire round-trips every message through the binary codec
	// (on in tests, off in large sweeps).
	DebugWire bool
	// Trace, when non-nil, records migration-relevant protocol events
	// for offline pattern analysis and policy replay (see NewTrace,
	// AnalyzeTrace, TraceReport).
	Trace *Trace
	// PathCompress enables forwarding-chain compression (extension
	// beyond the paper): redirected requesters notify their stale entry
	// points of the true home.
	PathCompress bool
	// Engine selects the execution engine: "sim" (default) runs on the
	// deterministic virtual-time kernel with Hockney message costs —
	// the engine behind the paper's figures; "live" runs the same
	// protocol on real goroutines behind a pluggable transport
	// (internal/live), with wall-clock metrics and real scheduler/
	// network nondeterminism. Network, Trace and the cost model apply
	// only to "sim"; a live run reports Wall and LiveMsgs instead of
	// virtual ExecTime.
	Engine string
	// Observer, when non-nil, receives coherence events (oracle hooks)
	// on either engine.
	Observer Observer
	// Transport injects a custom live-engine transport — e.g. a
	// multi-process cluster member carrying frames over TCP
	// (internal/live/cluster). nil selects the in-process chanloop
	// backend. Live engine only.
	Transport transport.Transport
	// LocalNode, when non-nil, makes this process execute only the
	// workers placed on that node: the multi-process mode of
	// cmd/dsmnode, where every process builds the identical cluster
	// (same deterministic setup, guarded by the bootstrap config
	// digest) and the other nodes' workers are registered but return
	// immediately. Registration stays symmetric across processes, so
	// global thread ids, per-node thread slots and message routing are
	// identical everywhere — the engine needs no awareness of which
	// process a peer node's threads actually run in. Live engine only,
	// and it requires a Transport that reaches the peer processes.
	LocalNode *NodeID
	// FlightCap, when positive, attaches a fixed-capacity flight
	// recorder to every node (internal/flight): HLC-stamped protocol
	// events — frame traffic, migration decisions with their reasons,
	// lock grants, barrier episodes — readable after the run through
	// FlightEvents. Works on both engines; the sim engine stamps with
	// the virtual clock, so a seeded run's timeline is reproducible.
	FlightCap int
	// FlightLocal injects an externally owned recorder for the local
	// node — the multi-process mode, where the cluster member owns the
	// recorder so its HLC stamps observe remote frames and the finish
	// exchange can gather the ring. Live engine only.
	FlightLocal *flight.Recorder
	// Telemetry, when non-nil, is a hot-object sink every node feeds
	// from the same nil-guarded hook sites as the flight recorder: a
	// space-saving top-K sketch of per-object accesses plus
	// migration-decision counts by reason. Works on both engines; pure
	// observation, so sim digests are unchanged by attaching it.
	Telemetry *telemetry.Sink
	// Metrics, when non-nil, receives the engine's live scrape metrics
	// (frame counters, protocol counters, merged latency histograms).
	// Live engine only — the sim engine's wall-free kernel has no
	// mid-run scrape surface.
	Metrics *telemetry.Registry
}

// Cluster is a configured DSM instance: declare shared state, then Run.
type Cluster struct {
	eng     proto.Cluster
	cfg     Config
	polName string
	// initial holds the pre-run home-copy contents, snapshotted at Run
	// when an Observer is attached, so the oracle can be fed the real
	// initial values (InitialWord) instead of assuming zeros.
	initial [][]uint64
}

// New builds a cluster. It panics on invalid configuration — a config is
// developer input, not runtime data.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		panic("dsm: Config.Nodes must be positive")
	}
	var net hockney.Model
	switch cfg.Network {
	case "", "fastethernet", "fe":
		net = hockney.FastEthernet()
	case "gigabit", "gbe":
		net = hockney.Gigabit()
	default:
		panic(fmt.Sprintf("dsm: unknown network %q", cfg.Network))
	}
	params := core.DefaultParams(net.Alpha)
	if cfg.Lambda != 0 {
		params.Lambda = cfg.Lambda
	}
	if cfg.TInit != 0 {
		params.TInit = cfg.TInit
	}
	polName := cfg.Policy
	if polName == "" {
		polName = "AT"
	}
	pol, err := migration.Parse(polName, params)
	if err != nil {
		panic("dsm: " + err.Error())
	}
	locName := cfg.Locator
	if locName == "" {
		locName = "fwdptr"
	}
	loc, err := locator.Parse(locName)
	if err != nil {
		panic("dsm: " + err.Error())
	}
	c := &Cluster{cfg: cfg, polName: pol.Name()}
	switch cfg.Engine {
	case "", "sim":
		c.eng = gos.New(gos.Config{
			Nodes:        cfg.Nodes,
			Net:          net,
			Policy:       pol,
			Locator:      loc,
			Params:       params,
			Piggyback:    !cfg.NoPiggyback,
			DebugWire:    cfg.DebugWire,
			Trace:        cfg.Trace,
			PathCompress: cfg.PathCompress,
			Observer:     cfg.Observer,
			FlightCap:    cfg.FlightCap,
			Telemetry:    cfg.Telemetry,
		})
	case "live":
		if cfg.Trace != nil {
			panic("dsm: Trace is not supported under the live engine (trace recording is not synchronized)")
		}
		c.eng = live.New(live.Config{
			Nodes:        cfg.Nodes,
			Policy:       pol,
			Locator:      loc,
			Params:       params,
			Piggyback:    !cfg.NoPiggyback,
			PathCompress: cfg.PathCompress,
			Observer:     cfg.Observer,
			Transport:    cfg.Transport,
			FlightCap:    cfg.FlightCap,
			FlightLocal:  cfg.FlightLocal,
			Telemetry:    cfg.Telemetry,
			Metrics:      cfg.Metrics,
		})
	default:
		panic(fmt.Sprintf("dsm: unknown engine %q (want \"sim\" or \"live\")", cfg.Engine))
	}
	if cfg.Engine != "live" && (cfg.Transport != nil || cfg.LocalNode != nil) {
		panic("dsm: Transport/LocalNode require Engine \"live\"")
	}
	if cfg.Engine != "live" && cfg.FlightLocal != nil {
		panic("dsm: FlightLocal requires Engine \"live\"")
	}
	if cfg.Engine != "live" && cfg.Metrics != nil {
		panic("dsm: Metrics requires Engine \"live\"")
	}
	if cfg.LocalNode != nil && (*cfg.LocalNode < 0 || int(*cfg.LocalNode) >= cfg.Nodes) {
		panic(fmt.Sprintf("dsm: LocalNode %d outside cluster of %d", *cfg.LocalNode, cfg.Nodes))
	}
	if cfg.LocalNode != nil && cfg.Transport == nil && cfg.Nodes > 1 {
		// The stubbed remote workers' real counterparts live in peer
		// processes; without a transport that reaches them the first
		// barrier would wait forever.
		panic("dsm: LocalNode requires a Transport that reaches the peer processes")
	}
	return c
}

// Nodes reports the cluster size.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// PolicyName reports the active migration policy.
func (c *Cluster) PolicyName() string { return c.polName }

// NewObject declares one shared object of words 64-bit words, homed at
// (i.e. "created by", §5) node home, and returns its id.
func (c *Cluster) NewObject(name string, words int, home NodeID) ObjectID {
	_ = name // names are documentation; ids are dense ints
	return c.eng.AddObject(words, home)
}

// NewLock declares a distributed lock managed by node home.
func (c *Cluster) NewLock(home NodeID) Lock { return c.eng.AddLock(home) }

// NewBarrier declares a barrier of parties threads managed by node home.
func (c *Cluster) NewBarrier(home NodeID, parties int) Barrier {
	return c.eng.AddBarrier(home, parties)
}

// Init seeds an object's home copy before the run at no simulated cost
// (pre-existing input data).
func (c *Cluster) Init(obj ObjectID, fn func(words []uint64)) { c.eng.InitObject(obj, fn) }

// HomeOf reports an object's current home (useful after a run, to see
// where migration placed it).
func (c *Cluster) HomeOf(obj ObjectID) NodeID { return c.eng.HomeOf(obj) }

// Data returns the authoritative (home-copy) contents of obj after a run.
func (c *Cluster) Data(obj ObjectID) []uint64 { return c.eng.ObjectData(obj) }

// Run executes fn on `threads` threads placed round-robin over the nodes
// (thread i on node i mod Nodes — the paper runs one thread per node) and
// returns the metrics.
func (c *Cluster) Run(threads int, fn func(Thread)) (Metrics, error) {
	var ws []Worker
	for i := 0; i < threads; i++ {
		ws = append(ws, Worker{
			Node: NodeID(i % c.Nodes()),
			Name: fmt.Sprintf("t%d", i),
			Fn:   fn,
		})
	}
	return c.RunWorkers(ws)
}

// RunWorkers executes explicitly placed workers (e.g. the synthetic
// benchmark's "threads on all nodes other than the start node", §5.2).
func (c *Cluster) RunWorkers(ws []Worker) (Metrics, error) {
	if c.cfg.LocalNode != nil {
		// Multi-process mode: register every worker (so thread ids and
		// per-node slot tables match the peer processes exactly) but
		// stub the remote nodes' bodies — their real counterparts run
		// in the processes that own those nodes.
		local := *c.cfg.LocalNode
		stubbed := make([]Worker, len(ws))
		copy(stubbed, ws)
		for i := range stubbed {
			if stubbed[i].Node != local {
				stubbed[i].Fn = func(Thread) {}
			}
		}
		ws = stubbed
	}
	if c.cfg.Observer != nil && c.initial == nil {
		// Snapshot the pre-run memory so the oracle can check reads of
		// never-written words against the true initial values.
		n := c.eng.NumObjects()
		c.initial = make([][]uint64, n)
		for obj := 0; obj < n; obj++ {
			c.initial[obj] = append([]uint64(nil), c.eng.ObjectData(ObjectID(obj))...)
		}
	}
	return c.eng.Run(ws)
}

// InitialWord reports the pre-run value of one word, recorded at Run
// time when an Observer is attached — the oracle.InitFn for this run.
func (c *Cluster) InitialWord(obj ObjectID, word int) uint64 {
	return c.initial[obj][word]
}

// CheckInvariants validates global protocol invariants after a run:
// exactly one home per object, terminating forwarding chains, no dirty
// cached copies or leaked twins, plausible copysets, a truthful manager
// table. Intended for tests, `dsmbench -check` sweeps and debugging.
func (c *Cluster) CheckInvariants() error { return c.eng.CheckInvariants() }

// Digest fingerprints the final shared-memory contents (FNV-1a over
// every object's home copy in object order). For a deterministic
// program it must be identical under every migration policy and
// locator — migration changes cost, never results.
func (c *Cluster) Digest() uint64 { return c.eng.Digest() }

// FlightEvents returns the merged (Wall, Logical)-ordered flight
// timeline of the run — every node's ring in one HLC-ordered log. Empty
// when recording was not enabled (Config.FlightCap/FlightLocal). Call
// after Run; see internal/flight for exporters (WriteText,
// WriteChromeTrace) and the trace bridge (ToTrace).
func (c *Cluster) FlightEvents() []flight.Event {
	if fe, ok := c.eng.(interface{ FlightEvents() []flight.Event }); ok {
		return fe.FlightEvents()
	}
	return nil
}

// FlightRecorders returns the per-node flight recorders, indexed by
// node id (nil entries where no recorder is attached). Useful for
// dump-on-abort reporting (flight.DumpLastN).
func (c *Cluster) FlightRecorders() []*flight.Recorder {
	if fr, ok := c.eng.(interface{ FlightRecorders() []*flight.Recorder }); ok {
		return fr.FlightRecorders()
	}
	return nil
}

// NewTrace returns an empty protocol-event trace to attach to
// Config.Trace.
func NewTrace() *Trace { return &trace.Trace{} }

// AnalyzeTrace classifies every traced object's access pattern
// (single-writer lasting/transient, multiple-writer, read-mostly).
func AnalyzeTrace(t *Trace) []TraceProfile { return trace.Analyze(t) }

// TraceReport renders the classification as a table.
func TraceReport(profiles []TraceProfile) string { return trace.Report(profiles) }
