package dsm_test

import (
	"bytes"
	"testing"

	dsm "repro"
	"repro/internal/flight"
)

// flightWorkload is a small mixed workload: lock-protected counter
// increments force lock handoffs and consecutive remote writes (so AT
// migrates homes), and a barrier closes each round.
func flightWorkload(t *testing.T) (*dsm.Cluster, []flight.Event, dsm.Metrics) {
	t.Helper()
	c := dsm.New(dsm.Config{Nodes: 4, Policy: "AT", FlightCap: 4096, DebugWire: true})
	counter := c.NewObject("counter", 1, 0)
	lock := c.NewLock(0)
	bar := c.NewBarrier(0, 4)
	m, err := c.Run(4, func(th dsm.Thread) {
		for round := 0; round < 3; round++ {
			for i := 0; i < 5; i++ {
				th.Acquire(lock)
				th.Write(counter, 0, th.Read(counter, 0)+1)
				th.Release(lock)
			}
			th.Barrier(bar)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, c.FlightEvents(), m
}

// TestSimFlightTimelineDeterministic is the acceptance gate for the sim
// recorder: the merged cluster timeline of two identical runs must be
// byte-identical — the stamps are virtual time plus a per-node sequence,
// so any divergence means the kernel or the recorder perturbed event
// order.
func TestSimFlightTimelineDeterministic(t *testing.T) {
	render := func() []byte {
		_, evs, _ := flightWorkload(t)
		var buf bytes.Buffer
		if err := flight.WriteText(&buf, evs); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if len(a) == 0 {
		t.Fatal("empty timeline")
	}
	if !bytes.Equal(a, b) {
		t.Errorf("sim flight timeline diverges across identical runs:\n%s\nvs\n%s", a, b)
	}
}

// TestSimFlightTimelineContent checks the recorder captured every event
// family the workload exercises, that migration decisions carry their
// reason and compared values, and that the latency histograms populated.
func TestSimFlightTimelineContent(t *testing.T) {
	c, evs, m := flightWorkload(t)

	var kinds [flight.NumKinds]int
	for _, e := range evs {
		kinds[e.Kind]++
	}
	for _, k := range []flight.Kind{
		flight.FrameSend, flight.FrameRecv, flight.Decision,
		flight.LockGrant, flight.BarrierRelease, flight.HomeRead,
		flight.HomeWrite, flight.Request,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %v events recorded", k)
		}
	}
	if m.Migrations > 0 && kinds[flight.Decision] == 0 {
		t.Error("homes migrated but no decision events recorded")
	}
	for _, e := range evs {
		if e.Kind == flight.Decision && e.Migrated {
			if e.Reason.String() == "none" || e.Limit <= 0 {
				t.Errorf("migrate decision lacks explanation: %+v", e)
			}
			break
		}
	}
	if m.LockHandoffNs.Count() == 0 || m.BarrierNs.Count() == 0 || m.RoundTripNs.Count() == 0 {
		t.Errorf("latency histograms empty: lock=%d barrier=%d rtt=%d",
			m.LockHandoffNs.Count(), m.BarrierNs.Count(), m.RoundTripNs.Count())
	}
	// Per-node recorders exist for every node and the merged view is
	// HLC-ordered.
	recs := c.FlightRecorders()
	if len(recs) != 4 {
		t.Fatalf("got %d recorders, want 4", len(recs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Stamp().Less(evs[i-1].Stamp()) {
			t.Fatalf("merged timeline out of HLC order at %d: %+v then %+v",
				i, evs[i-1], evs[i])
		}
	}
}
