// Benchmarks regenerating the paper's evaluation artifacts, one per
// table/figure (DESIGN.md's experiment index). Each benchmark runs the
// full deterministic simulation and reports the *virtual* quantities the
// paper plots as custom metrics: sim-seconds ("simsec"), protocol
// messages ("msgs"), network bytes ("wirebytes") and home migrations
// ("migrations"). Wall-clock ns/op measures the simulator itself.
//
// Run everything:   go test -bench=. -benchmem
// One figure:       go test -bench=Fig5
package dsm_test

import (
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/bench"
	"repro/internal/hockney"

	dsm "repro"
)

// report publishes the paper's metrics for the last run of a benchmark.
func report(b *testing.B, m dsm.Metrics) {
	b.ReportMetric(m.ExecTime.Seconds(), "simsec")
	b.ReportMetric(float64(m.TotalMsgs(false)), "msgs")
	b.ReportMetric(float64(m.TotalBytes(false)), "wirebytes")
	b.ReportMetric(float64(m.Migrations), "migrations")
}

// Figure 2 — execution time vs processors, NoHM vs HM(AT), per app.
// Scaled sizes keep each iteration sub-second; see EXPERIMENTS.md for
// the full-size runs.

func benchFig2(b *testing.B, app string, procs int, policy string) {
	s := bench.DefaultSizes()
	o := apps.Options{Nodes: procs, Policy: policy}
	var m dsm.Metrics
	for i := 0; i < b.N; i++ {
		res, err := runFig2App(app, s, o)
		if err != nil {
			b.Fatal(err)
		}
		m = res.Metrics
	}
	report(b, m)
}

func runFig2App(app string, s bench.Sizes, o apps.Options) (apps.Result, error) {
	switch app {
	case "ASP":
		return apps.RunASP(s.ASPN, o)
	case "SOR":
		return apps.RunSOR(s.SORN, s.SORIters, o)
	case "Nbody":
		return apps.RunNBody(s.NbodyN, s.NbodySteps, o)
	case "TSP":
		return apps.RunTSP(s.TSPCities, o)
	}
	return apps.Result{}, fmt.Errorf("unknown app %s", app)
}

func BenchmarkFig2(b *testing.B) {
	for _, app := range []string{"ASP", "SOR", "Nbody", "TSP"} {
		for _, procs := range []int{2, 4, 8, 16} {
			for _, pol := range []string{"NoHM", "AT"} {
				b.Run(fmt.Sprintf("%s/p%d/%s", app, procs, pol), func(b *testing.B) {
					benchFig2(b, app, procs, pol)
				})
			}
		}
	}
}

// Figure 3 — AT vs FT2 across problem sizes on 8 nodes (ASP and SOR).

func BenchmarkFig3(b *testing.B) {
	for _, app := range []string{"ASP", "SOR"} {
		for _, size := range []int{64, 128, 256} {
			for _, pol := range []string{"FT2", "AT"} {
				b.Run(fmt.Sprintf("%s/n%d/%s", app, size, pol), func(b *testing.B) {
					o := apps.Options{Nodes: 8, Policy: pol}
					var m dsm.Metrics
					for i := 0; i < b.N; i++ {
						var res apps.Result
						var err error
						if app == "ASP" {
							res, err = apps.RunASP(size, o)
						} else {
							res, err = apps.RunSOR(size, 12, o)
						}
						if err != nil {
							b.Fatal(err)
						}
						m = res.Metrics
					}
					report(b, m)
				})
			}
		}
	}
}

// Figure 5 — the synthetic single-writer benchmark across repetitions
// and protocols (both panels come from the same runs; 5(a) plots time,
// 5(b) plots the message breakdown, reported here as extra metrics).

func BenchmarkFig5(b *testing.B) {
	for _, r := range []int{2, 4, 8, 16} {
		for _, pol := range bench.Fig5Protocols {
			b.Run(fmt.Sprintf("r%d/%s", r, pol), func(b *testing.B) {
				var m dsm.Metrics
				for i := 0; i < b.N; i++ {
					res, err := apps.RunSynthetic(apps.SyntheticOpts{
						Repetition: r, TotalUpdates: 2048, Workers: 8,
					}, apps.Options{Nodes: 9, Policy: pol})
					if err != nil {
						b.Fatal(err)
					}
					m = res.Metrics
				}
				report(b, m)
				bd := m.Breakdown()
				b.ReportMetric(float64(bd.Obj), "obj")
				b.ReportMetric(float64(bd.Mig), "mig")
				b.ReportMetric(float64(bd.Diff), "diff")
				b.ReportMetric(float64(bd.Redir), "redir")
			})
		}
	}
}

// Appendix A — the α deduction is pure arithmetic; benchmark it to keep
// the hot-path cost visible (it runs on every exclusive home write).

func BenchmarkAlphaDeduction(b *testing.B) {
	net := hockney.FastEthernet()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += net.Alpha(1024, 128)
	}
	_ = sink
}

// Ablations (DESIGN.md A1–A3): locator mechanism, λ, related-work
// policies, piggybacking.

func BenchmarkAblateLocator(b *testing.B) {
	for _, loc := range []string{"fwdptr", "manager", "broadcast"} {
		b.Run(loc, func(b *testing.B) {
			var m dsm.Metrics
			for i := 0; i < b.N; i++ {
				res, err := apps.RunSynthetic(apps.SyntheticOpts{
					Repetition: 8, TotalUpdates: 1024, Workers: 8,
				}, apps.Options{Nodes: 9, Policy: "AT", Locator: loc})
				if err != nil {
					b.Fatal(err)
				}
				m = res.Metrics
			}
			report(b, m)
			b.ReportMetric(float64(m.Retries), "retries")
		})
	}
}

func BenchmarkAblateRelated(b *testing.B) {
	for _, pol := range []string{"NoHM", "JUMP", "Jackal5", "Jiajia", "AT"} {
		b.Run(pol, func(b *testing.B) {
			var m dsm.Metrics
			for i := 0; i < b.N; i++ {
				res, err := apps.RunSOR(128, 8, apps.Options{Nodes: 8, Policy: pol})
				if err != nil {
					b.Fatal(err)
				}
				m = res.Metrics
			}
			report(b, m)
		})
	}
}

func BenchmarkAblatePathCompress(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var m dsm.Metrics
			for i := 0; i < b.N; i++ {
				res, err := apps.RunSynthetic(apps.SyntheticOpts{
					Repetition: 2, TotalUpdates: 1024, Workers: 8,
				}, apps.Options{Nodes: 9, Policy: "FT1", PathCompress: on})
				if err != nil {
					b.Fatal(err)
				}
				m = res.Metrics
			}
			report(b, m)
			b.ReportMetric(float64(m.Breakdown().Redir), "redir")
		})
	}
}

func BenchmarkAblatePiggyback(b *testing.B) {
	for _, off := range []bool{false, true} {
		name := "on"
		if off {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			var m dsm.Metrics
			for i := 0; i < b.N; i++ {
				res, err := apps.RunSynthetic(apps.SyntheticOpts{
					Repetition: 8, TotalUpdates: 1024, Workers: 8,
				}, apps.Options{Nodes: 9, Policy: "NM", NoPiggyback: off})
				if err != nil {
					b.Fatal(err)
				}
				m = res.Metrics
			}
			report(b, m)
		})
	}
}
