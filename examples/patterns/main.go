// Patterns example: record a protocol-event trace from a mixed workload,
// classify every shared object's write pattern, and show how the
// classification predicts which objects the adaptive protocol migrates —
// the paper's core insight ("the access history can be used to predict
// the future behavior", §4) made visible through the public API. Run:
//
//	go run ./examples/patterns
package main

import (
	"fmt"
	"log"

	dsm "repro"
)

func main() {
	tr := dsm.NewTrace()
	c := dsm.New(dsm.Config{Nodes: 4, Policy: "NoHM", Trace: tr})

	// Three objects with three personalities:
	//   lasting  — node 1 writes it every interval,
	//   rotating — a different node writes it each interval,
	//   shared   — everyone increments it under a lock.
	lasting := c.NewObject("lasting", 4, 0)
	rotating := c.NewObject("rotating", 4, 0)
	shared := c.NewObject("shared", 1, 0)
	lock := c.NewLock(0)
	bar := c.NewBarrier(0, 4)

	_, err := c.Run(4, func(t dsm.Thread) {
		for round := 0; round < 12; round++ {
			if t.ID() == 1 {
				t.Write(lasting, 0, uint64(round+1))
			}
			if t.ID() == round%4 {
				t.Write(rotating, 0, uint64(100+round))
			}
			t.Acquire(lock)
			t.Write(shared, 0, t.Read(shared, 0)+1)
			t.Release(lock)
			t.Barrier(bar)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	profiles := dsm.AnalyzeTrace(tr)
	fmt.Println("access-pattern classification (traced under NoHM):")
	fmt.Print(dsm.TraceReport(profiles))

	// Now run the same program under the adaptive protocol and see where
	// the homes end up.
	c2 := dsm.New(dsm.Config{Nodes: 4, Policy: "AT"})
	lasting2 := c2.NewObject("lasting", 4, 0)
	rotating2 := c2.NewObject("rotating", 4, 0)
	shared2 := c2.NewObject("shared", 1, 0)
	lock2 := c2.NewLock(0)
	bar2 := c2.NewBarrier(0, 4)
	m, err := c2.Run(4, func(t dsm.Thread) {
		for round := 0; round < 12; round++ {
			if t.ID() == 1 {
				t.Write(lasting2, 0, uint64(round+1))
			}
			if t.ID() == round%4 {
				t.Write(rotating2, 0, uint64(100+round))
			}
			t.Acquire(lock2)
			t.Write(shared2, 0, t.Read(shared2, 0)+1)
			t.Release(lock2)
			t.Barrier(bar2)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nunder the adaptive protocol (AT):")
	fmt.Printf("  lasting  (single writer, node 1): home -> node %d\n", c2.HomeOf(lasting2))
	fmt.Printf("  rotating (writer changes rounds): home -> node %d\n", c2.HomeOf(rotating2))
	fmt.Printf("  shared   (multiple writers):      home -> node %d\n", c2.HomeOf(shared2))
	fmt.Printf("  migrations: %d, redirection hops: %d\n", m.Migrations, m.RedirectHops)
	fmt.Println("\nthe lasting single-writer object moved to its writer; the others stayed put.")
}
