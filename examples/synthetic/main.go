// Synthetic example: the paper's Fig. 4 micro-benchmark written directly
// against the public API — worker threads on nodes 1..W update a shared
// counter r times per turn under nested locks, while all synchronization
// and the counter's initial home live on node 0. Sweeps the repetition r
// across protocols and prints the per-protocol message breakdown (the
// Fig. 5 experiment). Run with:
//
//	go run ./examples/synthetic [-workers 8] [-updates 1024]
package main

import (
	"flag"
	"fmt"
	"log"

	dsm "repro"
)

func main() {
	workers := flag.Int("workers", 8, "worker threads (cluster = workers+1 nodes)")
	updates := flag.Int("updates", 1024, "total counter updates")
	flag.Parse()

	fmt.Printf("%-4s %-5s %10s %8s %6s %6s %6s %6s %6s\n",
		"r", "proto", "time", "msgs", "obj", "mig", "diff", "redir", "migr")
	for _, r := range []int{2, 4, 8, 16} {
		for _, policy := range []string{"NM", "FT1", "FT2", "AT"} {
			m := run(r, *updates, *workers, policy)
			b := m.Breakdown()
			fmt.Printf("%-4d %-5s %9.3fs %8d %6d %6d %6d %6d %6d\n",
				r, policy, m.ExecTime.Seconds(), m.TotalMsgs(false),
				b.Obj, b.Mig, b.Diff, b.Redir, m.Migrations)
		}
		fmt.Println()
	}
}

func run(r, updates, workers int, policy string) dsm.Metrics {
	c := dsm.New(dsm.Config{Nodes: workers + 1, Policy: policy})
	counter := c.NewObject("counter", 1, 0)
	lock0 := c.NewLock(0)
	lock1 := c.NewLock(0)

	var ws []dsm.Worker
	for i := 1; i <= workers; i++ {
		ws = append(ws, dsm.Worker{
			Node: dsm.NodeID(i),
			Name: fmt.Sprintf("worker%d", i),
			Fn: func(t dsm.Thread) {
				for {
					t.Acquire(lock0)
					if int(t.Read(counter, 0)) >= updates {
						t.Release(lock0)
						return
					}
					for j := 0; j < r; j++ {
						t.Acquire(lock1)
						t.Write(counter, 0, t.Read(counter, 0)+1)
						t.Release(lock1)
					}
					t.Release(lock0)
					t.Compute(200 * dsm.Microsecond) // "some simple arithmetic"
				}
			},
		})
	}
	m, err := c.RunWorkers(ws)
	if err != nil {
		log.Fatal(err)
	}
	return m
}
