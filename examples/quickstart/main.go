// Quickstart: a shared counter incremented from every node of a
// simulated 4-node cluster, showing the adaptive home-migration protocol
// in its simplest setting. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	dsm "repro"
)

func main() {
	// A 4-node cluster with the paper's defaults: adaptive threshold
	// (AT) over forwarding pointers on a Fast-Ethernet-class network.
	c := dsm.New(dsm.Config{Nodes: 4, Policy: "AT"})

	// One shared object (a single 64-bit word) created on node 0, and a
	// lock managed there too.
	counter := c.NewObject("counter", 1, 0)
	lock := c.NewLock(0)

	// Four threads, one per node, each adding 1000 to the counter.
	metrics, err := c.Run(4, func(t dsm.Thread) {
		for i := 0; i < 1000; i++ {
			t.Acquire(lock)
			t.Write(counter, 0, t.Read(counter, 0)+1)
			t.Release(lock)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("counter = %d (want 4000)\n", c.Data(counter)[0])
	fmt.Printf("virtual execution time: %v\n", metrics.ExecTime)
	fmt.Printf("messages: %d, network bytes: %d\n",
		metrics.TotalMsgs(true), metrics.TotalBytes(true))
	fmt.Printf("home migrations: %d (the counter ends up homed at node %d)\n",
		metrics.Migrations, c.HomeOf(counter))
	fmt.Println()
	fmt.Println(metrics.Summary())
}
