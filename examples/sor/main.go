// SOR example: red-black successive over-relaxation on the DSM, sweeping
// the three home-location mechanisms of the paper's §3.2 (forwarding
// pointer, home manager, broadcast) under the adaptive migration
// protocol. Run with:
//
//	go run ./examples/sor [-n 128] [-iters 10] [-nodes 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	dsm "repro"
)

func main() {
	n := flag.Int("n", 128, "matrix side")
	iters := flag.Int("iters", 10, "red-black iterations")
	nodes := flag.Int("nodes", 8, "cluster nodes")
	flag.Parse()

	fmt.Printf("SOR %dx%d, %d iterations, %d nodes, policy AT\n\n", *n, *n, *iters, *nodes)
	for _, locator := range []string{"fwdptr", "manager", "broadcast"} {
		m, residual := run(*n, *iters, *nodes, locator)
		fmt.Printf("%-10s time=%8.3fs  msgs=%7d  migrations=%4d  retries=%3d  residual=%.6f\n",
			locator, m.ExecTime.Seconds(), m.TotalMsgs(false), m.Migrations, m.Retries, residual)
	}
}

func run(n, iters, nodes int, locatorKind string) (dsm.Metrics, float64) {
	c := dsm.New(dsm.Config{Nodes: nodes, Policy: "AT", Locator: locatorKind})
	grid := c.NewArray("grid", n, n, dsm.RoundRobin)
	for j := 0; j < n; j++ {
		grid.InitFloat64(0, j, 1.0) // hot top boundary
	}
	bar := c.NewBarrier(0, nodes)
	const omega = 1.25

	m, err := c.Run(nodes, func(t dsm.Thread) {
		lo := max(1, t.ID()*n/nodes)
		hi := minInt((t.ID()+1)*n/nodes, n-1)
		for it := 0; it < iters; it++ {
			for color := 0; color < 2; color++ {
				for i := lo; i < hi; i++ {
					up := grid.RowView(t, i-1)
					down := grid.RowView(t, i+1)
					row := grid.RowWriteView(t, i)
					for j := 1 + (i+color)%2; j < n-1; j += 2 {
						v := math.Float64frombits(row[j])
						nb := (math.Float64frombits(up[j]) + math.Float64frombits(down[j]) +
							math.Float64frombits(row[j-1]) + math.Float64frombits(row[j+1])) / 4
						row[j] = math.Float64bits(v + omega*(nb-v))
					}
					t.Compute(dsm.Time(n/2) * 500 * dsm.Nanosecond)
				}
				t.Barrier(bar)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	// A scalar fingerprint of the relaxed field.
	var residual float64
	for i := 0; i < n; i++ {
		for _, v := range grid.DataFloat64(i) {
			residual += v
		}
	}
	return m, residual / float64(n*n)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
