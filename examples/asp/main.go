// ASP example: all-pairs shortest paths with parallel Floyd–Warshall on
// the DSM, comparing the adaptive home-migration protocol against no
// migration — the paper's Fig. 2 "ASP" panel in miniature, built directly
// on the public API. Run with:
//
//	go run ./examples/asp [-n 128] [-nodes 8]
package main

import (
	"flag"
	"fmt"
	"log"

	dsm "repro"
	"repro/internal/prng"
)

const inf = int64(1) << 40

func main() {
	n := flag.Int("n", 128, "graph size")
	nodes := flag.Int("nodes", 8, "cluster nodes")
	flag.Parse()

	for _, policy := range []string{"NoHM", "AT"} {
		m, checksum := run(*n, *nodes, policy)
		fmt.Printf("%-5s time=%8.3fs  msgs=%7d  traffic=%9dB  migrations=%4d  checksum=%d\n",
			policy, m.ExecTime.Seconds(), m.TotalMsgs(false), m.TotalBytes(false),
			m.Migrations, checksum)
	}
}

// run executes one ASP instance and returns metrics plus a result
// checksum (identical across policies — the protocol must not change the
// answer).
func run(n, nodes int, policy string) (dsm.Metrics, int64) {
	c := dsm.New(dsm.Config{Nodes: nodes, Policy: policy})

	// The distance matrix: one row object per vertex, homes round-robin
	// (deliberately misaligned with the writers, as in the paper).
	dist := c.NewArray("dist", n, n, dsm.RoundRobin)
	rnd := prng.New(1).Next
	for i := 0; i < n; i++ {
		i := i
		dist.InitRow(i, func(w []uint64) {
			for j := range w {
				switch {
				case i == j:
					w[j] = 0
				case rnd()%4 == 0:
					w[j] = uint64(1 + rnd()%100)
				default:
					w[j] = uint64(inf)
				}
			}
		})
	}
	bar := c.NewBarrier(0, nodes)

	metrics, err := c.Run(nodes, func(t dsm.Thread) {
		lo := t.ID() * n / nodes
		hi := (t.ID() + 1) * n / nodes
		for k := 0; k < n; k++ {
			rowK := dist.RowView(t, k) // one fault-in per iteration
			for i := lo; i < hi; i++ {
				row := dist.RowWriteView(t, i) // single writer: migrates here
				dik := int64(row[k])
				if dik < inf {
					for j := 0; j < n; j++ {
						if v := dik + int64(rowK[j]); v < int64(row[j]) {
							row[j] = uint64(v)
						}
					}
				}
				t.Compute(dsm.Time(n) * 500 * dsm.Nanosecond)
			}
			t.Barrier(bar)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	var sum int64
	for i := 0; i < n; i++ {
		for _, v := range dist.DataInt64(i) {
			if v < inf {
				sum += v
			}
		}
	}
	return metrics, sum
}
